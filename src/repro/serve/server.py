"""The asyncio HTTP scoring tier: ``POST /score`` over a fitted model.

Stdlib only — ``asyncio`` streams plus hand-parsed HTTP/1.1 (the
request grammar a scoring endpoint needs is tiny: request line,
headers, ``Content-Length`` body, keep-alive).  Three endpoints:

- ``POST /score`` — body ``{"row": [...]}`` or ``{"rows": [[...], ...]}``;
  answers ``{"scores": [...], "model": {...}, "batched_rows": b}`` where
  ``batched_rows`` is the size of the engine batch this request rode in
  (the micro-batching win, made observable).
- ``GET /healthz`` — liveness plus the batching counters, model
  version/generation, and uptime.  When telemetry is on the counters
  are *reads of the metrics registry*, so ``/healthz`` and
  ``/metrics`` can never drift apart.
- ``GET /model`` — what is being served: spec, registry version,
  fingerprint, swap count.
- ``GET /metrics`` — the Prometheus text exposition
  (:mod:`repro.obs`): batcher, watcher, worker-pool, walk-engine, and
  distance-counter families plus HTTP request counters/latency
  histograms.  ``metrics=False`` disables the whole telemetry tier
  (the route 404s and the hot paths skip every hook).

Telemetry rides each ``/score`` request as a
:class:`~repro.obs.tracing.RequestTrace`: parse → queue wait → engine
batch → walk (the inner distance-kernel share of the batch) →
respond, emitted as one JSON access-log line per request when
``repro serve --log-level info`` configures the serving loggers.
Scores are bit-identical with telemetry on or off — the only hook on
the numeric path is a counting proxy that delegates to the same
kernels.

Requests pass through :class:`~repro.serve.batching.MicroBatcher`, so
concurrent single-row clients are scored as one engine batch.  Scoring
runs off the event loop — in a thread (``workers=0``; the engine's
bulk kernels release the GIL) or on an mmap-attached
:class:`~repro.serve.workers.ScoringWorkerPool` — so the loop keeps
accepting and coalescing requests while a batch is being scored.

The serving boundary is hardened: malformed JSON, wrong-width rows,
non-finite values, and oversized batches come back as structured 4xx
JSON errors (``{"error": {"code": ..., "message": ...}}``), never as
connection-killing 500s.  Width checking reuses the same
:func:`repro.utils.validation.as_batch_rows` guard every other serving
path goes through.

Hot swap: :meth:`ScoringServer.swap_model` atomically replaces the
served :class:`ServedModel` *between* engine batches — each batch
dispatch snapshots the holder once, so in-flight batches drain against
the model they started with while new batches score on the new version
(see :mod:`repro.serve.watcher` for the registry-polling side).
"""

from __future__ import annotations

import asyncio
import json
import logging
import tempfile
import time
import weakref
from dataclasses import dataclass
from http import HTTPStatus
from pathlib import Path

import numpy as np

from repro.api.base import FittedModel
from repro.metric.base import MetricSpace
from repro.metric.instrumentation import CountingMetricSpace, DistanceCounter
from repro.obs import MetricsRegistry, RequestTrace, bind_process_sinks
from repro.obs.tracing import access_logger
from repro.serve.batching import BatcherClosed, BatcherOverloaded, MicroBatcher
from repro.serve.workers import ScoringWorkerPool
from repro.utils.validation import as_batch_rows

#: Routes exposed as their own label value on the HTTP request
#: families; anything else collapses to "other" (bounded cardinality).
_KNOWN_ROUTES = ("/score", "/healthz", "/metrics", "/model")

#: Largest request line / header line the parser accepts.
_MAX_HEADER_LINE = 8192
#: Largest request body (bytes) the parser accepts before 413.
_MAX_BODY_BYTES = 32 * 1024 * 1024


class HttpError(Exception):
    """A structured client-facing error (becomes a 4xx JSON response).

    ``retry_after`` (seconds) adds a ``Retry-After`` header — the 429
    overload path uses it to tell clients when the backlog should have
    drained.
    """

    def __init__(
        self,
        status: HTTPStatus,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


@dataclass(frozen=True)
class ServedModel:
    """One immutable generation of the served model.

    Swaps replace the whole object, so a batch that snapshotted one
    generation keeps a consistent (model, artifact, metadata) triple
    for its entire dispatch.
    """

    model: FittedModel
    artifact: str | None = None  # .npz path workers attach to
    spec: str | None = None
    version: int | None = None
    fingerprint: str | None = None
    generation: int = 0

    @property
    def dimensionality(self) -> int:
        return int(np.asarray(self.model.training_data).shape[1])

    def describe(self) -> dict:
        return {
            "spec": self.spec if self.spec is not None else self.model.spec,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "generation": self.generation,
            "n_fitted": self.model.n_fitted,
            "dimensionality": self.dimensionality,
        }


class ScoringServer:
    """Serve one fitted model over HTTP with adaptive micro-batching.

    Parameters
    ----------
    model:
        The fitted model to serve (vector data: the HTTP boundary is
        JSON rows).  Must retain its training data — the width guard
        and the worker artifact need it.
    artifact:
        Path of the model's published uncompressed ``.npz``
        (e.g. ``ModelRecord.path``).  Required only with ``workers > 0``
        — it is what the worker processes mmap-attach to; without one
        the server publishes the model to a temporary artifact itself.
    spec, version, fingerprint:
        Registry metadata surfaced by ``GET /model`` and used by the
        hot-swap watcher.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    window_s, max_batch:
        Micro-batching knobs (see :class:`MicroBatcher`).
    max_rows:
        Largest row count one request may carry (413 above it).
    max_pending:
        Cap on requests waiting in the micro-batch queue; past it new
        ``/score`` requests are shed with a structured 429 carrying a
        ``Retry-After`` drain estimate (``None`` = unbounded, the old
        behavior).  Everything accepted before the cap still scores
        and answers — overload sheds, it never corrupts or stalls.
    backlog:
        Listen-socket accept backlog handed to ``asyncio.start_server``
        — the second, kernel-level bound on how much unserved work can
        pile up behind the HTTP boundary.
    workers:
        ``0`` scores in a thread of this process; ``N >= 1`` scores on
        N mmap-attached worker processes.
    metrics:
        ``True`` (default) builds this server's
        :class:`~repro.obs.MetricsRegistry`, serves it as
        ``GET /metrics``, and traces every ``/score`` request.
        ``False`` turns the telemetry tier off entirely — no registry,
        no traces, no per-batch observation (the overhead baseline the
        obs bench measures against).
    """

    def __init__(
        self,
        model: FittedModel,
        *,
        artifact: str | Path | None = None,
        spec: str | None = None,
        version: int | None = None,
        fingerprint: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        window_s: float = 0.002,
        max_batch: int = 256,
        max_rows: int = 4096,
        max_pending: int | None = None,
        backlog: int = 128,
        workers: int = 0,
        metrics: bool = True,
    ):
        if model.training_data is None or np.asarray(model.training_data).ndim != 2:
            raise TypeError(
                "ScoringServer needs a vector model that retains its training "
                "data (the serving boundary validates request width against it)"
            )
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {backlog}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.host = host
        self._requested_port = int(port)
        self.max_rows = int(max_rows)
        self.backlog = int(backlog)
        self.workers = int(workers)
        self._pool = ScoringWorkerPool(workers) if workers > 0 else None
        self._owned_artifact: Path | None = None
        if workers > 0 and artifact is None:
            artifact = self._publish_temp_artifact(model)
        self._served = ServedModel(
            model,
            artifact=None if artifact is None else str(artifact),
            spec=spec,
            version=version,
            fingerprint=fingerprint,
            generation=0,
        )
        self.swaps = 0
        self.batcher = MicroBatcher(
            self._score_block, window_s=window_s, max_batch=max_batch,
            max_pending=max_pending,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: weakref.WeakSet = weakref.WeakSet()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopping = False
        self.requests_served = 0
        self._started_perf = time.perf_counter()
        self._access_log = access_logger()
        #: one DistanceCounter across every served generation, so the
        #: distance families stay monotonic through hot swaps
        self._distance_counter = DistanceCounter()
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics else None
        )
        if self.metrics is not None:
            self._bind_metrics()
            self._instrument_generation(self._served)

    # -- telemetry -----------------------------------------------------------

    def _bind_metrics(self) -> None:
        """Register every family this server exposes on ``/metrics``.

        Existing signal sources surface as callback families (the
        registry reads the counters the components already maintain);
        only genuinely new measurements — HTTP counters/latency, batch
        histograms, per-worker tallies — are registry instruments.
        """
        reg = self.metrics
        bind_process_sinks(reg)  # walk + engine process sinks
        self.batcher.bind_metrics(reg)
        self._m_http_requests = reg.counter(
            "repro_http_requests_total",
            "HTTP requests answered, by route and status code",
            labelnames=("route", "code"),
        )
        self._m_http_seconds = reg.histogram(
            "repro_http_request_seconds",
            "End-to-end request seconds, by route",
            labelnames=("route",),
        )
        reg.register_callback(
            "repro_http_inflight", "gauge",
            "Requests currently being handled",
            lambda: self._inflight,
        )
        reg.register_callback(
            "repro_server_uptime_seconds", "gauge",
            "Seconds since this server was constructed",
            lambda: time.perf_counter() - self._started_perf,
        )
        reg.register_callback(
            "repro_model_generation", "gauge",
            "Generation of the served model (increments on hot swap)",
            lambda: self._served.generation,
        )
        reg.register_callback(
            "repro_model_version", "gauge",
            "Registry version being served (-1 = unversioned)",
            lambda: -1 if self._served.version is None else self._served.version,
        )
        reg.register_callback(
            "repro_model_swaps_total", "counter",
            "Hot model swaps performed by this server",
            lambda: self.swaps,
        )
        counter = self._distance_counter
        reg.register_callback(
            "repro_distance_evaluations_total", "counter",
            "Distance evaluations in the serving score path, by call shape",
            lambda: {("scalar",): counter.scalar_calls, ("bulk",): counter.bulk_pairs},
            labelnames=("kind",),
        )
        reg.register_callback(
            "repro_distance_bulk_calls_total", "counter",
            "Bulk distance-kernel dispatches in the serving score path",
            lambda: counter.bulk_calls,
        )
        reg.register_callback(
            "repro_distance_seconds_total", "counter",
            "Seconds inside the serving distance kernels",
            lambda: counter.seconds,
        )
        self._m_worker_requests = reg.counter(
            "repro_worker_requests_total",
            "Engine batches scored, by worker process",
            labelnames=("pid",),
        )
        self._m_worker_rows = reg.counter(
            "repro_worker_rows_total",
            "Rows scored, by worker process",
            labelnames=("pid",),
        )
        self._m_worker_seconds = reg.counter(
            "repro_worker_busy_seconds_total",
            "Seconds spent scoring, by worker process",
            labelnames=("pid",),
        )
        #: (route, code) -> (counter child, histogram child): skips the
        #: family labels() lookup on the per-request path.  Bounded by
        #: _KNOWN_ROUTES x status codes actually answered.
        self._http_children: dict[tuple[str, int], tuple] = {}

    def _instrument_generation(self, served: ServedModel) -> None:
        """Route one generation's distance traffic through the counter.

        The served core's :class:`MetricSpace` is replaced with a
        *timed* :class:`CountingMetricSpace` proxy sharing the
        server-wide :class:`DistanceCounter`.  The proxy delegates to
        the same kernels, so scores stay bit-identical; models without
        a metric space (the array baselines) are left untouched.
        """
        core = getattr(served.model, "model", None)
        space = getattr(core, "space", None)
        if isinstance(space, CountingMetricSpace):
            # a previous server (or run) already wrapped this model —
            # rewrap the same inner space so THIS server's counter sees
            # the traffic instead of the stale one
            space = space._inner
        if isinstance(space, MetricSpace):
            core.space = CountingMetricSpace(
                space, counter=self._distance_counter, timed=True
            )

    # -- model generations ---------------------------------------------------

    @property
    def served(self) -> ServedModel:
        """The current generation (snapshot this once per use)."""
        return self._served

    def swap_model(
        self,
        model: FittedModel,
        *,
        artifact: str | Path | None = None,
        spec: str | None = None,
        version: int | None = None,
        fingerprint: str | None = None,
    ) -> ServedModel:
        """Atomically serve ``model`` from the next engine batch on.

        In-flight batches hold their own :class:`ServedModel` snapshot
        and drain against the old generation; nothing is interrupted.
        With workers, the new artifact path misses the workers' attach
        cache, so they map the new version on first use.
        """
        if self._pool is not None and artifact is None:
            raise ValueError(
                "hot swap with worker processes needs the new model's "
                "artifact path (workers attach by path, not by pickle)"
            )
        old = self._served
        self._served = ServedModel(
            model,
            artifact=None if artifact is None else str(artifact),
            spec=spec if spec is not None else old.spec,
            version=version,
            fingerprint=fingerprint if fingerprint is not None else old.fingerprint,
            generation=old.generation + 1,
        )
        self.swaps += 1
        if self.metrics is not None:
            self._instrument_generation(self._served)
        return self._served

    def _publish_temp_artifact(self, model: FittedModel) -> Path:
        """Self-publish ``model`` so workers have something to attach to."""
        directory = Path(tempfile.mkdtemp(prefix="repro-serve-"))
        path = directory / "model.npz"
        model.save(path)
        self._owned_artifact = path
        return path

    # -- scoring -------------------------------------------------------------

    async def _score_block(self, rows: np.ndarray):
        """Score one formed batch off the event loop.

        The generation snapshot happens here — once per engine batch —
        which is exactly the "swap between batches" contract.  With
        telemetry on the return is ``(scores, extras)``: batch facts
        the micro-batcher stamps onto every coalesced request's trace
        (inner kernel seconds, the generation/version snapshot,
        worker pid).  The distance-counter delta is race-free because
        the batcher dispatches batches strictly sequentially.
        """
        served = self._served
        if self.metrics is None:
            if self._pool is not None:
                return await self._pool.score(served.artifact, rows)
            return await asyncio.get_running_loop().run_in_executor(
                None, lambda: np.asarray(served.model.score_batch(rows))
            )
        extras = {
            "generation": served.generation,
            "model_version": served.version,
        }
        if self._pool is not None:
            scores, pid, seconds = await self._pool.score_traced(
                served.artifact, rows
            )
            key = str(pid)
            self._m_worker_requests.labels(key).inc()
            self._m_worker_rows.labels(key).inc(float(rows.shape[0]))
            self._m_worker_seconds.labels(key).inc(seconds)
            extras["walk_s"] = seconds
            extras["worker_pid"] = pid
            return scores, extras
        before = self._distance_counter.seconds
        scores = await asyncio.get_running_loop().run_in_executor(
            None, lambda: np.asarray(served.model.score_batch(rows))
        )
        extras["walk_s"] = self._distance_counter.seconds - before
        return scores, extras

    def _parse_rows(self, body: bytes) -> np.ndarray:
        """Request body -> validated ``(b, d)`` rows, or a structured 4xx."""
        try:
            payload = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(
                HTTPStatus.BAD_REQUEST, "bad_json", f"request body is not JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict) or ("row" in payload) == ("rows" in payload):
            raise HttpError(
                HTTPStatus.BAD_REQUEST,
                "bad_request",
                'body must be a JSON object with exactly one of "row" '
                '(one vector) or "rows" (a list of vectors)',
            )
        raw = [payload["row"]] if "row" in payload else payload["rows"]
        try:
            rows = np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise HttpError(
                HTTPStatus.BAD_REQUEST,
                "bad_batch",
                f"rows are not numeric vectors of one width: {exc}",
            ) from exc
        if rows.size == 0:
            raise HttpError(
                HTTPStatus.BAD_REQUEST, "bad_batch", "rows must not be empty"
            )
        if rows.ndim > 2:
            raise HttpError(
                HTTPStatus.BAD_REQUEST,
                "bad_batch",
                f"rows must be vectors, got a {rows.ndim}-dimensional block",
            )
        if rows.ndim == 2 and rows.shape[0] > self.max_rows:
            raise HttpError(
                HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                "too_many_rows",
                f"request carries {rows.shape[0]} rows; this server accepts "
                f"at most {self.max_rows} per request",
            )
        try:
            rows = as_batch_rows(rows, self._served.dimensionality)
        except ValueError as exc:
            raise HttpError(HTTPStatus.BAD_REQUEST, "bad_batch", str(exc)) from exc
        if not np.isfinite(rows).all():
            raise HttpError(
                HTTPStatus.BAD_REQUEST,
                "non_finite",
                "rows contain NaN or infinite values",
            )
        return rows

    async def _handle_score(
        self, body: bytes, trace: RequestTrace | None = None
    ) -> dict:
        if trace is not None:
            with trace.span("parse"):
                rows = self._parse_rows(body)
            trace.annotate(rows=int(rows.shape[0]))
        else:
            rows = self._parse_rows(body)
        try:
            scores, batched_rows = await self.batcher.submit(rows, trace)
        except BatcherOverloaded as exc:
            raise HttpError(
                HTTPStatus.TOO_MANY_REQUESTS,
                "overloaded",
                str(exc),
                retry_after=exc.retry_after,
            ) from exc
        except BatcherClosed as exc:
            raise HttpError(
                HTTPStatus.SERVICE_UNAVAILABLE, "draining", str(exc)
            ) from exc
        # the generation as of response time: the batch dispatch takes its
        # own snapshot, so under a mid-request swap this block names the
        # newest generation the scores could have come from
        served = self._served
        if trace is not None:
            trace.annotate(batched_rows=batched_rows)
        return {
            "scores": np.asarray(scores, dtype=np.float64).tolist(),
            "model": served.describe(),
            "batched_rows": batched_rows,
        }

    # -- http plumbing -------------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader):
        """One request off the wire: ``(method, path, headers, body)``.

        Returns ``None`` on clean EOF (client closed a keep-alive
        connection between requests).
        """
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        if len(line) > _MAX_HEADER_LINE:
            raise HttpError(
                HTTPStatus.REQUEST_URI_TOO_LONG, "bad_request", "request line too long"
            )
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise HttpError(
                HTTPStatus.BAD_REQUEST, "bad_request", "malformed request line"
            )
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or len(line) > _MAX_HEADER_LINE:
                raise HttpError(
                    HTTPStatus.BAD_REQUEST, "bad_request", "malformed headers"
                )
            if line in (b"\r\n", b"\n"):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise HttpError(
                    HTTPStatus.BAD_REQUEST, "bad_request", "malformed header line"
                )
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            n = int(length)
        except ValueError:
            raise HttpError(
                HTTPStatus.BAD_REQUEST, "bad_request", "bad Content-Length"
            ) from None
        if n < 0 or n > _MAX_BODY_BYTES:
            raise HttpError(
                HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                "body_too_large",
                f"request body of {n} bytes exceeds {_MAX_BODY_BYTES}",
            )
        body = await reader.readexactly(n) if n else b""
        return method, target, headers, body

    @staticmethod
    def _encode_response(
        status: HTTPStatus,
        payload,
        *,
        keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
    ) -> bytes:
        if isinstance(payload, str):
            # raw text body (the /metrics exposition)
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        extra = ""
        if extra_headers:
            extra = "".join(f"{k}: {v}\r\n" for k, v in extra_headers.items())
        head = (
            f"HTTP/1.1 {status.value} {status.phrase}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    def _healthz_payload(self) -> dict:
        """The liveness body.

        With telemetry on, the served-traffic counters are *reads of
        the metrics registry* (summed over label children) — the same
        numbers ``/metrics`` exposes, by construction.  With telemetry
        off they read the component attributes directly; either way the
        bookkeeping lives in one place.
        """
        if self.metrics is not None:
            reg = self.metrics
            counters = {
                "requests_served": int(
                    reg.read("repro_http_requests_total", match={"code": "200"})
                ),
                "batches_dispatched": int(reg.read("repro_batcher_batches_total")),
                "rows_scored": int(reg.read("repro_batcher_rows_scored_total")),
                "requests_shed": int(reg.read("repro_batcher_requests_shed_total")),
                "swaps": int(reg.read("repro_model_swaps_total")),
            }
        else:
            counters = {
                "requests_served": self.requests_served,
                "batches_dispatched": self.batcher.batches_dispatched,
                "rows_scored": self.batcher.rows_scored,
                "requests_shed": self.batcher.requests_shed,
                "swaps": self.swaps,
            }
        served = self._served
        return {
            "status": "draining" if self._stopping else "ok",
            **counters,
            "mean_batch_rows": round(self.batcher.mean_batch_rows, 3),
            "largest_batch": self.batcher.largest_batch,
            "pending": self.batcher.pending,
            "max_pending": self.batcher.max_pending,
            "ewma_batch_s": round(self.batcher.ewma_batch_s, 6),
            "window_s": self.batcher.window_s,
            "max_batch": self.batcher.max_batch,
            "workers": self.workers,
            "model_version": served.version,
            "generation": served.generation,
            "uptime_s": round(time.perf_counter() - self._started_perf, 3),
        }

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        trace: RequestTrace | None = None,
    ) -> tuple:
        path = target.split("?", 1)[0]
        if path == "/score":
            if method != "POST":
                raise HttpError(
                    HTTPStatus.METHOD_NOT_ALLOWED,
                    "method_not_allowed",
                    "use POST /score",
                )
            return HTTPStatus.OK, await self._handle_score(body, trace)
        if path == "/healthz":
            if method != "GET":
                raise HttpError(
                    HTTPStatus.METHOD_NOT_ALLOWED,
                    "method_not_allowed",
                    "use GET /healthz",
                )
            return HTTPStatus.OK, self._healthz_payload()
        if path == "/metrics":
            if method != "GET":
                raise HttpError(
                    HTTPStatus.METHOD_NOT_ALLOWED,
                    "method_not_allowed",
                    "use GET /metrics",
                )
            if self.metrics is None:
                raise HttpError(
                    HTTPStatus.NOT_FOUND,
                    "metrics_disabled",
                    "telemetry is disabled on this server (metrics=False)",
                )
            return HTTPStatus.OK, self.metrics.render()
        if path == "/model":
            if method != "GET":
                raise HttpError(
                    HTTPStatus.METHOD_NOT_ALLOWED,
                    "method_not_allowed",
                    "use GET /model",
                )
            return HTTPStatus.OK, self._served.describe()
        raise HttpError(
            HTTPStatus.NOT_FOUND,
            "not_found",
            f"no route {path!r}; try POST /score, GET /healthz, "
            "GET /metrics, GET /model",
        )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while not self._stopping:
                try:
                    request = await self._read_request(reader)
                except HttpError as exc:
                    writer.write(self._error_response(exc, keep_alive=False))
                    await writer.drain()
                    return
                except asyncio.IncompleteReadError:
                    return
                if request is None:
                    return
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                path = target.split("?", 1)[0]
                # Traces feed the access log and nothing else (the
                # latency/batch histograms time themselves), so an
                # unconfigured logger skips the whole span machinery.
                logging_on = self._access_log.isEnabledFor(logging.INFO)
                trace = RequestTrace() if path == "/score" and logging_on else None
                started = time.perf_counter()
                self._inflight += 1
                self._idle.clear()
                try:
                    status, payload = await self._route(method, target, body, trace)
                    response = self._encode_response(
                        status, payload, keep_alive=keep_alive
                    )
                    self.requests_served += 1
                    code = status.value
                except HttpError as exc:
                    response = self._error_response(exc, keep_alive=keep_alive)
                    code = exc.status.value
                    if trace is not None:
                        trace.annotate(error=exc.code)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if trace is not None:
                    with trace.span("respond"):
                        writer.write(response)
                        await writer.drain()
                else:
                    writer.write(response)
                    await writer.drain()
                if self.metrics is not None:
                    route = path if path in _KNOWN_ROUTES else "other"
                    fast = self._http_children.get((route, code))
                    if fast is None:
                        fast = (
                            self._m_http_requests.labels(route, str(code)),
                            self._m_http_seconds.labels(route),
                        )
                        self._http_children[(route, code)] = fast
                    fast[0].inc()
                    fast[1].observe(time.perf_counter() - started)
                if trace is not None:
                    self._access_log.info(
                        trace.record(method=method, path=path, status=code)
                    )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away / server shutting down
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    def _error_response(self, exc: HttpError, *, keep_alive: bool) -> bytes:
        headers = None
        if exc.retry_after is not None:
            # Retry-After is integer seconds; round up so a sub-second
            # drain estimate never tells clients to retry immediately.
            headers = {"Retry-After": str(max(1, int(-(-exc.retry_after // 1))))}
        return self._encode_response(
            exc.status,
            {"error": {"code": exc.code, "message": exc.message}},
            keep_alive=keep_alive,
            extra_headers=headers,
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ScoringServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port,
            backlog=self.backlog,
        )
        return self

    async def serve_forever(self) -> None:  # pragma: no cover - CLI loop
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self, *, timeout: float = 10.0) -> None:
        """Graceful shutdown: answer everything in flight, then close.

        New connections are refused immediately; requests already being
        processed (including ones waiting in the micro-batch queue) are
        scored and answered before their connections close.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:  # pragma: no cover - pathological batch
            pass
        await self.batcher.drain()
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown()
        if self._owned_artifact is not None:
            try:
                self._owned_artifact.unlink()
                self._owned_artifact.parent.rmdir()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._owned_artifact = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoringServer({self._served.describe()!r}, "
            f"window_s={self.batcher.window_s}, workers={self.workers})"
        )
