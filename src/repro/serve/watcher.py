"""Hot model swap: poll the registry, swap the server between batches.

The deployment loop the registry (PR 3) was built for: fitters
``publish`` new versions of a ``(spec, fingerprint)`` key while a
long-lived :class:`~repro.serve.server.ScoringServer` keeps answering.
:class:`RegistryWatcher` closes that loop — it polls
:meth:`~repro.api.model_registry.ModelRegistry.latest_version` (a
single-key directory scan, not a registry-wide listing) and, when a
newer completed version appears, mmap-loads it and calls
:meth:`~repro.serve.server.ScoringServer.swap_model`.  The swap is
atomic between engine batches; requests in flight drain against the
version they started on.

Polling beats inotify-style watching here on purpose: the registry's
completeness marker is ``meta.json`` written last (atomically), so a
poll can never observe a half-published artifact, and a plain
directory scan works on any filesystem the registry lives on (NFS
included).
"""

from __future__ import annotations

import asyncio

from repro.api.model_registry import ModelRegistry

from repro.serve.server import ScoringServer


class RegistryWatcher:
    """Keep one server on the newest published version of one key.

    Parameters
    ----------
    server:
        The running :class:`ScoringServer` to swap.
    registry:
        The :class:`ModelRegistry` the model was resolved from.
    spec, fingerprint:
        The registry key to watch (both pinned: polling must stay a
        one-directory scan, and a watcher that guessed fingerprints
        could swap in a model fitted on different data).
    poll_s:
        Seconds between freshness probes.
    mmap:
        Load new versions memory-mapped (the default — the whole point
        of uncompressed artifacts).
    """

    def __init__(
        self,
        server: ScoringServer,
        registry: ModelRegistry,
        spec: str,
        fingerprint: str,
        *,
        poll_s: float = 2.0,
        mmap: bool = True,
    ):
        if poll_s <= 0:
            raise ValueError(f"poll_s must be > 0, got {poll_s}")
        self.server = server
        self.registry = registry
        self.spec = spec
        self.fingerprint = fingerprint
        self.poll_s = float(poll_s)
        self.mmap = mmap
        self._task: asyncio.Task | None = None
        #: versions this watcher swapped in (observability / tests)
        self.swapped_versions: list[int] = []
        #: freshness probes completed (observability)
        self.polls = 0

    def bind_metrics(self, registry) -> None:
        """Expose this watcher on a :class:`~repro.obs.MetricsRegistry`.

        Callback families over the counters the watcher already keeps:
        probes completed, swaps performed, and the active generation /
        version gauges live on the server's own families.
        """
        registry.register_callback(
            "repro_watcher_polls_total", "counter",
            "Registry freshness probes completed by the hot-swap watcher",
            lambda: self.polls,
        )
        registry.register_callback(
            "repro_watcher_swaps_total", "counter",
            "Hot swaps performed by the registry watcher",
            lambda: len(self.swapped_versions),
        )

    async def check_once(self) -> bool:
        """One freshness probe; swaps and returns True when newer."""
        self.polls += 1
        latest = self.registry.latest_version(
            self.spec, fingerprint=self.fingerprint
        )
        current = self.server.served.version
        if latest is None or (current is not None and latest <= current):
            return False
        record = self.registry.record(
            self.spec, fingerprint=self.fingerprint, version=latest
        )
        from repro.api.estimators import load_model

        model = load_model(record.path, mmap=self.mmap)
        self.server.swap_model(
            model,
            artifact=record.path,
            spec=record.spec,
            version=record.version,
            fingerprint=record.fingerprint,
        )
        self.swapped_versions.append(latest)
        return True

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.poll_s)
            try:
                await self.check_once()
            except (OSError, ValueError, LookupError):  # pragma: no cover
                # a transient registry hiccup (slow publish, fs blip) must
                # not kill the watcher; the next poll retries
                continue

    def start(self) -> "RegistryWatcher":
        """Start polling in the running event loop."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serve-watcher"
            )
        return self

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegistryWatcher({self.spec!r}, fingerprint={self.fingerprint!r}, "
            f"poll_s={self.poll_s})"
        )
