"""mmap-shared scoring workers: N processes, one physical model.

The scoring tier's multi-core story mirrors the walk engine's
(:mod:`repro.engine.parallel`): worker processes never receive a
pickled model.  Each worker *attaches* to the published
uncompressed-``.npz`` artifact through the zip-offset mmap path
(:func:`repro.io.mmap.open_npz_mmap`), so the index arrays and the
fitted data matrix are read-only :class:`numpy.memmap` views of the
registry file itself — the OS page cache keeps one physical copy no
matter how many workers score over it.  Only the request rows and the
returned scores cross the process boundary.

The attach cache is keyed by ``(path, inode, mtime_ns)``: a hot model
swap points the pool at a *new* version path (or a republished file),
and a stale mapping can never be served for it.  The cache is bounded,
because a long-lived worker survives any number of swaps.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

# -- worker side -------------------------------------------------------------
#
# Module-level functions so they pickle under any start method (the
# same contract as repro.engine.parallel's worker functions).

#: Attached-model cache, keyed by (path, inode, mtime_ns); bounded so a
#: long-lived worker that outlives many hot swaps does not accumulate
#: one mapped model per version it ever served.
_ATTACHED: dict[tuple[str, int, int], object] = {}
_ATTACHED_MAX = 4


def _attached_model(path: str):
    """The worker's FittedModel for one artifact, mmap-attached once."""
    stat = os.stat(path)
    key = (path, stat.st_ino, stat.st_mtime_ns)
    model = _ATTACHED.get(key)
    if model is None:
        from repro.api.estimators import load_model

        model = load_model(path, mmap=True)
        while len(_ATTACHED) >= _ATTACHED_MAX:
            _ATTACHED.pop(next(iter(_ATTACHED)))  # oldest insertion first
        _ATTACHED[key] = model
    return model


def score_rows_attached(path: str, rows: np.ndarray) -> np.ndarray:
    """One engine batch, scored in the worker over the mmap-attached model."""
    return np.asarray(_attached_model(path).score_batch(rows))


def score_rows_traced(path: str, rows: np.ndarray) -> tuple[np.ndarray, int, float]:
    """Like :func:`score_rows_attached`, plus who scored it and for how long.

    Returns ``(scores, pid, seconds)`` over the existing result pipe —
    the telemetry tier aggregates these into per-worker request/row/
    busy-seconds families without adding any new IPC channel.
    """
    started = time.perf_counter()
    scores = np.asarray(_attached_model(path).score_batch(rows))
    return scores, os.getpid(), time.perf_counter() - started


def attachment_report(path: str) -> dict:
    """How one worker sees one artifact (diagnostic / test hook).

    Proves the sharing claim: ``data_mmap`` / ``index_mmap`` are True
    iff the model's arrays are views of the mapped registry file (not
    materialized copies), and ``pid`` identifies the worker process.
    ``index_mmap`` is ``None`` for models that carry no tree (the
    baseline array models score against the data matrix alone).
    """
    from repro.engine.parallel import _is_mmap_backed

    model = _attached_model(path)
    data = model.training_data
    report = {
        "pid": os.getpid(),
        "n_fitted": model.n_fitted,
        "data_mmap": None if data is None else _is_mmap_backed(np.asarray(data)),
        "index_mmap": None,
    }
    core = getattr(model, "model", None)  # McCatchServingModel wraps the core
    index = getattr(core, "index", None)
    if index is not None:
        flat = index.flat
        report["index_mmap"] = all(
            _is_mmap_backed(a)
            for a in (flat.center, flat.radius, flat.elems, flat.child_lo)
        )
    return report


# -- pool side ---------------------------------------------------------------


class ScoringWorkerPool:
    """A process pool whose workers score via mmap attachment.

    Parameters
    ----------
    workers:
        Worker process count (>= 1).  The pool is owned by one server
        (unlike the walk engine's process-global pools): a server
        shutdown must be able to release its workers without tearing
        down pools other components still use.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    async def score(self, path: str, rows: np.ndarray) -> np.ndarray:
        """Score one batch on any free worker, attached to ``path``."""
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, score_rows_attached, path, rows
        )

    async def score_traced(
        self, path: str, rows: np.ndarray
    ) -> tuple[np.ndarray, int, float]:
        """Score one batch and report ``(scores, worker_pid, seconds)``."""
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, score_rows_traced, path, rows
        )

    def attachment_reports(self, path: str, probes: int | None = None) -> list[dict]:
        """One report per probe task (default: one per worker).

        Which worker serves which probe is the pool's business, so the
        reports may repeat pids; what they prove is that *whoever*
        answered holds the model as an mmap view.
        """
        futures = [
            self._pool.submit(attachment_report, path)
            for _ in range(probes if probes is not None else self.workers)
        ]
        return [f.result() for f in futures]

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScoringWorkerPool(workers={self.workers})"
