"""Small shared utilities: validation helpers and RNG handling."""

from repro.utils.rng import check_random_state
from repro.utils.validation import (
    as_float_array,
    check_dataset,
    check_positive_int,
    check_probability,
)

__all__ = [
    "as_float_array",
    "check_dataset",
    "check_positive_int",
    "check_probability",
    "check_random_state",
]
