"""Random-number-generator plumbing shared by datasets and baselines."""

from __future__ import annotations

import numpy as np


def check_random_state(seed) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    ``Generator`` (returned unchanged).  Mirrors the scikit-learn
    convention so every stochastic entry point in the library takes a
    uniform ``random_state`` argument.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"random_state must be None, int, or Generator, got {type(seed)!r}")
