"""Input validation helpers used across the library.

The public entry points of the library accept either NumPy arrays of
vectors or arbitrary Python sequences of metric objects (strings,
trees, ...).  These helpers centralize the checks so error messages are
consistent everywhere.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def as_float_array(X, *, name: str = "X") -> np.ndarray:
    """Coerce ``X`` to a 2-d float64 array, validating shape and finiteness."""
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one row")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_dataset(data) -> int:
    """Validate a dataset (array or object sequence) and return its size."""
    if isinstance(data, np.ndarray):
        if data.ndim not in (1, 2):
            raise ValueError(f"array dataset must be 1-d or 2-d, got shape {data.shape}")
        n = int(data.shape[0])
    elif isinstance(data, Sequence):
        n = len(data)
    else:
        try:
            n = len(data)  # type: ignore[arg-type]
        except TypeError:
            raise TypeError(
                "dataset must be a numpy array or a sized sequence of metric objects"
            ) from None
    if n == 0:
        raise ValueError("dataset must not be empty")
    return n


def check_positive_int(value, *, name: str, minimum: int = 1) -> int:
    """Validate an integer hyperparameter with a lower bound."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_probability(value, *, name: str, allow_zero: bool = True) -> float:
    """Validate a float hyperparameter in [0, 1]."""
    value = float(value)
    low_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (low_ok and value <= 1.0):
        raise ValueError(f"{name} must be in {'[0, 1]' if allow_zero else '(0, 1]'}, got {value}")
    return value


def as_batch_rows(batch, dimensionality: int) -> np.ndarray:
    """A held-out batch as ``(b, d)`` float64 rows, ``d`` pinned.

    The shared serving-boundary guard: NumPy would happily *broadcast*
    a width-1 batch against d-dimensional fitted data and produce
    plausible-looking garbage scores, so the width is checked, not
    assumed.  A 1-d input is one point for ``d > 1`` and a column of
    points for ``d == 1``.
    """
    rows = np.asarray(batch, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows.reshape(1, -1) if dimensionality > 1 else rows.reshape(-1, 1)
    if rows.ndim != 2 or rows.shape[1] != dimensionality:
        raise ValueError(
            f"batch has shape {rows.shape}; the model was fitted on "
            f"{dimensionality}-dimensional data"
        )
    return rows
