"""Dependency-free visualization: SVG figures and HTML reports.

The paper's explainability claim rests on *showing* the 'Oracle' plot
and the cutoff histogram (Figs. 3-4); :mod:`repro.core.explain` renders
them as ASCII, and this package renders them as standalone SVG/HTML —
no matplotlib, just text generation — so results can be inspected in a
browser straight from a script or the CLI.
"""

from repro.viz.report import html_report, write_report
from repro.viz.svg import (
    histogram_svg,
    oracle_plot_svg,
    scaling_plot_svg,
    scatter_svg,
)

__all__ = [
    "scatter_svg",
    "oracle_plot_svg",
    "histogram_svg",
    "scaling_plot_svg",
    "html_report",
    "write_report",
]
