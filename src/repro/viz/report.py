"""Standalone HTML report for a McCatch run.

``html_report`` assembles one self-contained document: the ranked
microcluster table (Alg. 1's M and S), per-point top scores (W), the
'Oracle' plot and cutoff histogram SVGs, and — for 2-d vector data —
the colored scatter.  Everything inlines into a single file with no
external assets, so ``write_report(...)`` output can be mailed around.
"""

from __future__ import annotations

import html
from pathlib import Path

import numpy as np

from repro.core.explain import explain_point
from repro.core.result import McCatchResult
from repro.viz.svg import histogram_svg, oracle_plot_svg, scatter_svg

_STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 1100px; color: #222; }
h1 { border-bottom: 2px solid #d62728; padding-bottom: .2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: .35em .8em; text-align: right; }
th { background: #f4f4f4; }
td.left, th.left { text-align: left; }
.figures { display: flex; flex-wrap: wrap; gap: 1.5em; }
.explain { background: #fafafa; border-left: 4px solid #1f77b4;
           padding: .6em 1em; margin: .6em 0; white-space: pre-wrap; }
"""


def _microcluster_table(result: McCatchResult, max_rows: int) -> str:
    rows = [
        "<table><tr><th>rank</th><th>cardinality</th><th>score s_j (bits/member)"
        "</th><th>bridge length</th><th class=left>member indices</th></tr>"
    ]
    for rank, mc in enumerate(result.microclusters[:max_rows]):
        members = ", ".join(str(int(i)) for i in sorted(mc.indices)[:12])
        if mc.cardinality > 12:
            members += f", … ({mc.cardinality} total)"
        rows.append(
            f"<tr><td>{rank}</td><td>{mc.cardinality}</td>"
            f"<td>{mc.score:.2f}</td><td>{mc.bridge_length:.4g}</td>"
            f"<td class=left>{members}</td></tr>"
        )
    rows.append("</table>")
    if len(result.microclusters) > max_rows:
        rows.append(f"<p>… and {len(result.microclusters) - max_rows} more microclusters.</p>")
    return "\n".join(rows)


def _top_points_table(result: McCatchResult, max_rows: int) -> str:
    order = np.argsort(result.point_scores)[::-1][:max_rows]
    rows = ["<table><tr><th>point</th><th>score w_i</th><th>microcluster rank</th></tr>"]
    labels = result.labels
    for i in order:
        rank = int(labels[int(i)])
        rows.append(
            f"<tr><td>{int(i)}</td><td>{result.point_scores[int(i)]:.2f}</td>"
            f"<td>{'—' if rank < 0 else rank}</td></tr>"
        )
    rows.append("</table>")
    return "\n".join(rows)


def html_report(
    result: McCatchResult,
    points=None,
    *,
    title: str = "McCatch report",
    max_rows: int = 15,
    explain_top: int = 3,
) -> str:
    """Render ``result`` as a self-contained HTML document string.

    Parameters
    ----------
    result:
        A :class:`~repro.core.result.McCatchResult`.
    points:
        The original data; when 2-d vector data is given, a colored
        scatter is included.
    title:
        Report headline.
    max_rows:
        Row cap for the ranking tables.
    explain_top:
        Number of top microclusters to explain in prose
        (via :func:`repro.core.explain.explain_point`).
    """
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>n = {result.n} elements, {len(result.microclusters)} microclusters "
        f"({result.n_outliers} outlying elements), cutoff d = "
        f"{result.cutoff.value:.4g}.</p>",
        "<h2>Microclusters (most-strange-first)</h2>",
        _microcluster_table(result, max_rows),
        "<h2>Figures</h2><div class='figures'>",
        oracle_plot_svg(result),
        histogram_svg(result),
    ]
    if points is not None:
        X = np.asarray(points)
        if X.ndim == 2 and X.shape[1] >= 2 and np.issubdtype(X.dtype, np.number):
            parts.append(scatter_svg(X.astype(np.float64), result))
    parts.append("</div>")

    if explain_top > 0 and result.microclusters:
        parts.append("<h2>Why are they anomalous?</h2>")
        for mc in result.microclusters[:explain_top]:
            text = explain_point(result, int(mc.indices[0]))
            parts.append(f"<div class='explain'>{html.escape(text)}</div>")

    parts.append("<h2>Top-scored points (W)</h2>")
    parts.append(_top_points_table(result, max_rows))
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(result: McCatchResult, path, points=None, **kwargs) -> Path:
    """Write :func:`html_report` output to ``path`` and return it."""
    path = Path(path)
    path.write_text(html_report(result, points, **kwargs), encoding="utf-8")
    return path
