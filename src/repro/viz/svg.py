"""Hand-rolled SVG figures for McCatch results.

Each function returns a complete ``<svg>...</svg>`` document string.
Everything is computed with plain arithmetic — there is deliberately no
plotting dependency, keeping the library's install surface at
numpy/scipy only.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.result import McCatchResult

#: Color cycle for microcluster ranks (rank 0 first); inliers are grey.
PALETTE = ["#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#e377c2", "#17becf"]
INLIER_COLOR = "#bbbbbb"


class _Canvas:
    """Minimal SVG canvas with margins and data-space scaling."""

    def __init__(self, width: int, height: int, margin: int = 45):
        self.width = width
        self.height = height
        self.margin = margin
        self.parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]
        self._x_range = (0.0, 1.0)
        self._y_range = (0.0, 1.0)

    # -- scaling ----------------------------------------------------------

    def set_ranges(self, x_range: tuple[float, float], y_range: tuple[float, float]):
        def pad(lo: float, hi: float) -> tuple[float, float]:
            if hi <= lo:
                hi = lo + 1.0
            span = hi - lo
            return lo - 0.05 * span, hi + 0.05 * span

        self._x_range = pad(*x_range)
        self._y_range = pad(*y_range)

    def px(self, x: float) -> float:
        lo, hi = self._x_range
        frac = (x - lo) / (hi - lo)
        return self.margin + frac * (self.width - 2 * self.margin)

    def py(self, y: float) -> float:
        lo, hi = self._y_range
        frac = (y - lo) / (hi - lo)
        return self.height - self.margin - frac * (self.height - 2 * self.margin)

    # -- primitives ---------------------------------------------------------

    def circle(self, x: float, y: float, r: float, fill: str, opacity: float = 1.0):
        self.parts.append(
            f'<circle cx="{self.px(x):.2f}" cy="{self.py(y):.2f}" r="{r}" '
            f'fill="{fill}" fill-opacity="{opacity}"/>'
        )

    def line(self, x1, y1, x2, y2, stroke: str = "#333", width: float = 1.0, dash: str = ""):
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{self.px(x1):.2f}" y1="{self.py(y1):.2f}" '
            f'x2="{self.px(x2):.2f}" y2="{self.py(y2):.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def rect(self, x, y, w_data, h_data, fill: str, opacity: float = 1.0):
        x0, y0 = self.px(x), self.py(y + h_data)
        w = self.px(x + w_data) - x0
        h = self.py(y) - y0
        self.parts.append(
            f'<rect x="{x0:.2f}" y="{y0:.2f}" width="{max(w, 0):.2f}" '
            f'height="{max(h, 0):.2f}" fill="{fill}" fill-opacity="{opacity}"/>'
        )

    def text(self, x_pix: float, y_pix: float, s: str, size: int = 12,
             anchor: str = "middle", color: str = "#222", rotate: float | None = None):
        transform = (
            f' transform="rotate({rotate} {x_pix:.1f} {y_pix:.1f})"' if rotate else ""
        )
        self.parts.append(
            f'<text x="{x_pix:.1f}" y="{y_pix:.1f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{color}"{transform}>{_escape(s)}</text>'
        )

    def axes(self, x_label: str, y_label: str, title: str = ""):
        m = self.margin
        self.parts.append(
            f'<rect x="{m}" y="{m}" width="{self.width - 2 * m}" '
            f'height="{self.height - 2 * m}" fill="none" stroke="#444"/>'
        )
        self.text(self.width / 2, self.height - 8, x_label)
        self.text(14, self.height / 2, y_label, rotate=-90)
        if title:
            self.text(self.width / 2, m - 10, title, size=14)

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


def _escape(s: str) -> str:
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _log_safe(values: np.ndarray, floor_ratio: float = 1e-3) -> tuple[np.ndarray, float]:
    """Map values to log10, sending zeros to a floor below the smallest
    positive value (the 'Oracle' plot draws y=0 points on a bottom rail)."""
    positive = values[values > 0]
    floor = float(positive.min()) * floor_ratio if positive.size else 1e-9
    return np.log10(np.maximum(values, floor)), math.log10(floor)


def scatter_svg(
    points,
    result: McCatchResult | None = None,
    *,
    width: int = 520,
    height: int = 420,
    title: str = "",
    point_radius: float = 3.0,
) -> str:
    """2-d scatter of the data, colored by microcluster membership.

    Data with more than two dimensions is projected onto its first two
    coordinates.  Inliers are grey; each microcluster gets a palette
    color by rank (rank 0 = most anomalous = red).
    """
    X = np.asarray(points, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] < 2:
        raise ValueError("scatter_svg needs 2-d vector data (n, >=2)")
    canvas = _Canvas(width, height)
    canvas.set_ranges((X[:, 0].min(), X[:, 0].max()), (X[:, 1].min(), X[:, 1].max()))
    labels = result.labels if result is not None else np.full(X.shape[0], -1)
    for i in np.nonzero(labels < 0)[0]:
        canvas.circle(X[i, 0], X[i, 1], point_radius, INLIER_COLOR, opacity=0.7)
    for i in np.nonzero(labels >= 0)[0]:
        color = PALETTE[int(labels[i]) % len(PALETTE)]
        canvas.circle(X[i, 0], X[i, 1], point_radius + 1.0, color)
    canvas.axes("attr1", "attr2", title)
    return canvas.render()


def oracle_plot_svg(
    result: McCatchResult,
    *,
    width: int = 520,
    height: int = 420,
    title: str = "'Oracle' plot",
) -> str:
    """The paper's 'Oracle' plot (Fig. 3ii): x = 1NN Distance, y = Group
    1NN Distance, both log-scaled, with the Cutoff ``d`` drawn on both
    axes and outliers colored by microcluster rank."""
    oracle = result.oracle
    lx, x_floor = _log_safe(oracle.x)
    ly, y_floor = _log_safe(oracle.y)
    canvas = _Canvas(width, height)
    canvas.set_ranges((min(lx.min(), x_floor), lx.max()), (min(ly.min(), y_floor), ly.max()))
    labels = result.labels
    for i in np.nonzero(labels < 0)[0]:
        canvas.circle(lx[i], ly[i], 3.0, INLIER_COLOR, opacity=0.6)
    for i in np.nonzero(labels >= 0)[0]:
        canvas.circle(lx[i], ly[i], 4.0, PALETTE[int(labels[i]) % len(PALETTE)])
    if np.isfinite(result.cutoff.value) and result.cutoff.value > 0:
        d_log = math.log10(result.cutoff.value)
        canvas.line(d_log, canvas._y_range[0], d_log, canvas._y_range[1],
                    stroke="#000", dash="5,4")
        canvas.line(canvas._x_range[0], d_log, canvas._x_range[1], d_log,
                    stroke="#000", dash="5,4")
        canvas.text(canvas.px(d_log) + 4, canvas.margin + 14, "d", size=13, anchor="start")
    canvas.axes("1NN Distance (log10)", "Group 1NN Distance (log10)", title)
    return canvas.render()


def histogram_svg(
    result: McCatchResult,
    *,
    width: int = 520,
    height: int = 320,
    title: str = "Histogram of 1NN Distances",
) -> str:
    """The Def. 4 histogram with the MDL cut position (Fig. 4)."""
    info = result.cutoff
    bins = np.asarray(info.histogram, dtype=np.float64)
    canvas = _Canvas(width, height)
    canvas.set_ranges((0.0, float(bins.size)), (0.0, float(bins.max(initial=1.0))))
    for e, count in enumerate(bins):
        color = "#1f77b4" if info.index < 0 or e < info.index else "#d62728"
        canvas.rect(e + 0.08, 0.0, 0.84, float(count), color, opacity=0.85)
    if info.index >= 0:
        canvas.line(float(info.index), 0.0, float(info.index), float(bins.max(initial=1.0)),
                    stroke="#000", width=1.5, dash="5,4")
        canvas.text(canvas.px(float(info.index)), canvas.margin - 4, "cut -> d", size=12)
    canvas.axes("radius index e", "count", title)
    return canvas.render()


def scaling_plot_svg(
    sizes: Sequence[int],
    seconds: Sequence[float],
    *,
    expected_slope: float | None = None,
    width: int = 520,
    height: int = 420,
    title: str = "Runtime vs data size",
) -> str:
    """Log-log runtime curve (Fig. 7) with an optional expected-slope guide."""
    ns = np.asarray(sizes, dtype=np.float64)
    ts = np.asarray(seconds, dtype=np.float64)
    if ns.size != ts.size or ns.size < 2:
        raise ValueError("need at least two (size, seconds) pairs of equal length")
    if (ns <= 0).any() or (ts <= 0).any():
        raise ValueError("sizes and seconds must be positive for a log-log plot")
    lx, ly = np.log10(ns), np.log10(ts)
    canvas = _Canvas(width, height)
    canvas.set_ranges((lx.min(), lx.max()), (ly.min(), ly.max()))
    for a, b in zip(range(ns.size - 1), range(1, ns.size)):
        canvas.line(lx[a], ly[a], lx[b], ly[b], stroke="#1f77b4", width=2.0)
    for xi, yi in zip(lx, ly):
        canvas.circle(xi, yi, 4.0, "#1f77b4")
    if expected_slope is not None:
        # Anchor the guide at the first measurement.
        y_end = ly[0] + expected_slope * (lx[-1] - lx[0])
        canvas.line(lx[0], ly[0], lx[-1], y_end, stroke="#d62728", dash="6,4", width=1.5)
        canvas.text(canvas.px(lx[-1]) - 4, canvas.py(y_end) - 6,
                    f"slope {expected_slope:.2f}", anchor="end", color="#d62728")
    canvas.axes("n (log10)", "seconds (log10)", title)
    return canvas.render()
