"""Shared fixtures: small, fast datasets reused across the suite."""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest

# The example smoke tests run scripts in subprocesses with cwd=tmp_path.
# A relative PYTHONPATH entry like "src" (the common way to run this
# suite from the repo root) silently stops resolving there, so make the
# src/ layout importable by absolute path for every child process — and
# for this process too, in case the package is neither installed nor on
# the inherited path.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
_parts = [p for p in os.environ.get("PYTHONPATH", "").split(os.pathsep) if p]
if _SRC not in _parts:
    os.environ["PYTHONPATH"] = os.pathsep.join([_SRC] + _parts)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.metric.base import MetricSpace  # noqa: E402


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def blob_with_mc():
    """500 Gaussian inliers + 8-point microcluster + 2 singletons.

    Returns (X, labels) with labels 0 = inlier, 1 = mc, 2 = singleton.
    """
    rng = np.random.default_rng(0)
    inliers = rng.normal(0.0, 1.0, (500, 2))
    mc = rng.normal(0.0, 0.03, (8, 2)) + [10.0, 10.0]
    singles = np.array([[18.0, -4.0], [-14.0, 15.0]])
    X = np.vstack([inliers, mc, singles])
    labels = np.zeros(X.shape[0], dtype=int)
    labels[500:508] = 1
    labels[508:] = 2
    return X, labels


@pytest.fixture(scope="session")
def vector_space(blob_with_mc):
    X, _ = blob_with_mc
    return MetricSpace(X)


@pytest.fixture(scope="session")
def small_points():
    """60 well-spread 3-d points for index agreement tests."""
    rng = np.random.default_rng(7)
    return np.vstack(
        [
            rng.normal(0, 1, (30, 3)),
            rng.normal(5, 0.5, (20, 3)),
            rng.uniform(-8, 8, (10, 3)),
        ]
    )


@pytest.fixture(scope="session")
def string_space():
    words = ["SMITH", "SMYTH", "JOHNSON", "JONSON", "BRAUN", "BROWN",
             "XKRZQW", "GARCIA", "GARZIA", "MILLER"]
    from repro.metric.strings import levenshtein

    return MetricSpace(words, levenshtein)
