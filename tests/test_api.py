"""The unified serving API: spec registry, fitted models, mmap persistence."""

import numpy as np
import pytest

from repro import McCatch
from repro.api import (
    FittedModel,
    KNNOutModel,
    LOFModel,
    DBOutModel,
    McCatchEstimator,
    McCatchServingModel,
    TransductiveModel,
    load_model,
    make_estimator,
    parse_spec,
    registered_names,
    spec_of,
)
from repro.baselines import (
    all_detectors,
    all_detector_specs,
    hyperparameter_grid,
    hyperparameter_grid_specs,
)
from repro.baselines.base import BaseDetector
from repro.index.factory import build_index
from repro.io.indexes import load_index, save_index
from repro.metric.base import MetricSpace


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    X = np.vstack([rng.normal(0.0, 1.0, (200, 3)), [[8.0, 8.0, 8.0], [8.1, 8.0, 8.0]]])
    return X


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(11)
    return np.vstack([rng.normal(0.0, 1.0, (30, 3)), [[40.0, -40.0, 0.0]]])


class TestSpecRegistry:
    def test_every_detector_constructible_and_round_trips(self):
        # The acceptance criterion: all_detectors() plus McCatch.
        detectors = all_detectors(random_state=0) + [
            McCatch(),
            McCatch(n_radii=10, index="vptree", engine_mode="per_point"),
        ]
        for det in detectors:
            spec = spec_of(det)
            est = make_estimator(spec)
            assert est.spec == spec
            assert make_estimator(est.spec).spec == est.spec

    def test_mccatch_params_forwarded(self):
        est = make_estimator("mccatch?a=11&b=0.2&engine=per_point&index=balltree")
        assert isinstance(est, McCatchEstimator)
        det = est.detector
        assert det.n_radii == 11
        assert det.max_slope == 0.2
        assert det.engine_mode == "per_point"
        assert det.index == "balltree"

    def test_baseline_params_forwarded(self):
        est = make_estimator("iforest?n_trees=16&seed=3")
        assert est.detector.n_trees == 16
        assert est.detector.random_state == 3

    def test_canonical_spec_sorts_keys(self):
        assert make_estimator("mccatch?engine=per_point&a=10").spec == (
            "mccatch?a=10&engine=per_point"
        )

    def test_numpy_scalar_params_render_as_plain_values(self):
        from repro.baselines import DBOut

        spec = spec_of(DBOut(radius_fraction=np.float64(0.25)))
        assert spec == "dbout?radius_fraction=0.25"
        assert make_estimator(spec).detector.radius_fraction == 0.25

    def test_int_tuple_params_round_trip(self):
        from repro.baselines import DeepSVDD

        spec = spec_of(DeepSVDD(hidden=(64, 32, 16)))
        assert spec == "deepsvdd?hidden=64,32,16"
        assert make_estimator(spec).detector.hidden == (64, 32, 16)
        with pytest.raises(ValueError, match="int list"):
            make_estimator("deepsvdd?hidden=64,abc")

    def test_canonical_spec_drops_spelled_out_defaults(self):
        # equivalent configurations must render (and registry-key) the same
        assert make_estimator("lof?k=5").spec == "lof"
        assert make_estimator("mccatch?a=15&engine=batched").spec == "mccatch"
        assert make_estimator("iforest?seed=0").spec == "iforest?seed=0"  # != None

    def test_small_n_fits_clamp_k_consistently(self):
        # the stored k must be the one the fitted arrays were built with
        X = np.zeros((3, 2)) + np.arange(3)[:, None]
        lof = make_estimator("lof?k=10").fit(X)
        assert lof.k == 2
        knn = make_estimator("knnout?k=10").fit(X)
        assert knn.k == 2
        assert knn.score_batch(X[:2]).shape == (2,)

    def test_names_are_punctuation_insensitive(self):
        for alias in ("kNN-Out?k=3", "knnout?k=3", "KNN_OUT?k=3"):
            assert make_estimator(alias).spec == "knnout?k=3"
        assert make_estimator("DB-Out").spec == "dbout"
        assert make_estimator("KMeans--").spec == "kmeansmm"
        assert make_estimator("D.MCA").spec == "dmca"

    def test_unknown_detector_lists_registered_names(self):
        with pytest.raises(ValueError, match=r"unknown detector 'nope'.*mccatch"):
            make_estimator("nope?k=3")

    def test_unknown_parameter_lists_valid_params(self):
        with pytest.raises(ValueError, match=r"unknown parameter 'kk'.*\['k'\]"):
            make_estimator("lof?kk=3")

    def test_bad_value_raises_with_type(self):
        with pytest.raises(ValueError, match="not a valid int"):
            make_estimator("lof?k=three")

    def test_malformed_and_duplicate_params_raise(self):
        with pytest.raises(ValueError, match="expected key=value"):
            make_estimator("lof?k")
        with pytest.raises(ValueError, match="duplicate"):
            make_estimator("lof?k=3&k=4")

    def test_parse_spec_splits_raw(self):
        assert parse_spec("mccatch?a=15&engine=batched") == (
            "mccatch", {"a": "15", "engine": "batched"}
        )

    def test_estimator_passes_through(self):
        est = make_estimator("lof?k=2")
        assert make_estimator(est) is est

    def test_registered_names_cover_inventory(self):
        names = registered_names()
        assert "mccatch" in names
        assert len(names) == 25  # 24 baseline classes + mccatch

    def test_grid_specs_reconstruct_grid(self):
        for name in ("LOF", "iForest", "DB-Out"):
            specs = hyperparameter_grid_specs(name, 200, random_state=0)
            grid = hyperparameter_grid(name, 200, random_state=0)
            assert len(specs) == len(grid)
            for spec, det in zip(specs, grid):
                rebuilt = make_estimator(spec).detector
                assert type(rebuilt) is type(det)

    def test_all_detector_specs_constructible(self):
        for spec in all_detector_specs(random_state=1):
            make_estimator(spec)

    def test_spec_of_rejects_unregistered_class(self):
        with pytest.raises(TypeError, match="not a registered detector"):
            spec_of(object())


class TestInductiveModels:
    @pytest.mark.parametrize("spec,cls", [
        ("knnout?k=4", KNNOutModel),
        ("lof?k=6", LOFModel),
        ("dbout?radius_fraction=0.25", DBOutModel),
    ])
    def test_training_scores_match_fit_scores(self, dataset, spec, cls):
        model = make_estimator(spec).fit(dataset)
        assert isinstance(model, cls)
        expected = make_estimator(spec).detector.fit_scores(dataset)
        assert np.array_equal(model.training_scores, expected)

    @pytest.mark.parametrize("spec", [
        "knnout?k=4", "lof?k=6", "dbout?radius_fraction=0.25",
    ])
    def test_save_load_scores_bit_identical(self, dataset, batch, spec, tmp_path):
        model = make_estimator(spec).fit(dataset)
        scores = model.score_batch(batch)
        assert scores.shape == (batch.shape[0],)
        path = model.save(tmp_path / "m.npz")
        for mmap in (False, True):
            back = FittedModel.load(path, mmap=mmap)
            assert back.spec == model.spec
            assert np.array_equal(back.score_batch(batch), scores)
            assert np.array_equal(back.training_scores, model.training_scores)

    @pytest.mark.parametrize("spec", [
        "knnout?k=4", "lof?k=6", "dbout", "mccatch?index=vptree",
    ])
    def test_dimension_mismatched_batch_rejected(self, dataset, spec):
        # a width-1 batch would broadcast against the fitted data and
        # score garbage; the serving boundary must refuse instead
        model = make_estimator(spec).fit(dataset)
        with pytest.raises(ValueError, match="fitted on 3-dimensional"):
            model.score_batch(np.zeros((4, 1)))
        with pytest.raises(ValueError, match="fitted on 3-dimensional"):
            model.score_batch(np.zeros((4, 5)))

    def test_one_dimensional_fits_score_columns(self):
        X = np.arange(20, dtype=np.float64).reshape(-1, 1)
        model = make_estimator("knnout?k=2").fit(X)
        assert model.score_batch([1.0, 2.0, 3.0]).shape == (3,)

    def test_held_out_knnout_is_kth_train_distance(self, dataset):
        model = make_estimator("knnout?k=1").fit(dataset)
        q = np.array([[0.0, 0.0, 0.0]])
        d = np.sqrt(((dataset - q) ** 2).sum(axis=1)).min()
        assert model.score_batch(q)[0] == pytest.approx(d)

    def test_dbout_radius_frozen_at_fit(self, dataset):
        model = make_estimator("dbout?radius_fraction=0.1").fit(dataset)
        # a training row scored as held-out counts itself at distance 0,
        # so it sees exactly the training count (which also counted self)
        assert model.score_batch(dataset[:5]) == pytest.approx(
            model.training_scores[:5]
        )


class TestTransductiveModel:
    def test_score_batch_reruns_on_union(self, dataset, batch):
        spec = "iforest?n_trees=8&seed=5"
        model = make_estimator(spec).fit(dataset)
        assert isinstance(model, TransductiveModel)
        expected = make_estimator(spec).detector.fit_scores(
            np.vstack([dataset, batch])
        )[dataset.shape[0]:]
        assert np.array_equal(model.score_batch(batch), expected)

    def test_save_load_round_trip_with_seed(self, dataset, batch, tmp_path):
        model = make_estimator("iforest?n_trees=8&seed=5").fit(dataset)
        scores = model.score_batch(batch)
        path = model.save(tmp_path / "t.npz")
        for mmap in (False, True):
            back = FittedModel.load(path, mmap=mmap)
            assert isinstance(back, TransductiveModel)
            assert np.array_equal(back.score_batch(batch), scores)

    def test_odin_is_transductive(self, dataset):
        assert isinstance(make_estimator("odin?k=3").fit(dataset), TransductiveModel)


class TestDegenerateData:
    def test_lof_stays_finite_on_duplicate_heavy_data(self):
        # >= k+1 coincident rows saturate the lrds; the reachability
        # floor keeps both entry points finite and consistent
        rng = np.random.default_rng(0)
        X = np.vstack([np.zeros((8, 2)), rng.normal(5.0, 1.0, (20, 2))])
        from repro.baselines import LOF

        direct = LOF(k=5).fit_scores(X)
        assert np.isfinite(direct).all()
        model = make_estimator("lof?k=5").fit(X)
        assert np.array_equal(model.training_scores, direct)
        assert np.isfinite(model.score_batch(np.zeros((2, 2)))).all()

    def test_lof_finite_with_point_adjacent_to_duplicates(self):
        # the nasty case: a normal-lrd point whose neighbors are all
        # saturated duplicates — the ratio must not overflow to inf,
        # at fit time or when serving a held-out point
        from repro.baselines import LOF

        X = np.vstack([np.zeros((11, 2)), [[5.0, 5.0]]])
        scores = LOF(k=5).fit_scores(X)
        assert np.isfinite(scores).all()
        assert scores[-1] > scores[:-1].max()  # still ranks last point top
        model = make_estimator("lof?k=5").fit(X)
        held = model.score_batch(np.array([[5.0, 5.0], [0.0, 0.0]]))
        assert np.isfinite(held).all()

    def test_lof_is_scale_invariant(self):
        # the reachability floor is relative to the data's own scale:
        # pico-scale data must rank identically to unit-scale data
        from repro.baselines import LOF

        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(0.0, 1.0, (200, 2)), [[8.0, 8.0]]])
        base = LOF(k=10).fit_scores(X)
        tiny_scale = LOF(k=10).fit_scores(X * 1e-12)
        assert int(np.argmax(base)) == int(np.argmax(tiny_scale)) == 200
        assert np.allclose(base, tiny_scale)


class TestMetricSpecs:
    def test_metric_param_round_trips(self):
        est = make_estimator("mccatch?index=vptree&metric=manhattan")
        assert est.spec == "mccatch?index=vptree&metric=manhattan"
        assert est.metric == "manhattan"

    def test_spec_metric_conflicts_with_fit_arg(self, dataset):
        est = make_estimator("mccatch?metric=manhattan")
        with pytest.raises(TypeError, match="pins metric"):
            est.fit(dataset, "chebyshev")

    def test_spec_metric_actually_fits_that_metric(self, dataset):
        from repro import McCatch

        via_spec = make_estimator("mccatch?index=vptree&metric=manhattan").fit(dataset)
        direct = McCatch(index="vptree").fit(dataset, "manhattan")
        assert np.array_equal(via_spec.training_scores, direct.point_scores)

    def test_streaming_rejects_metric_pinning_spec(self):
        from repro import StreamingMcCatch

        with pytest.raises(TypeError, match="pins a fit metric"):
            StreamingMcCatch("mccatch?metric=manhattan")

    def test_euclidean_metric_canonicalizes_away(self):
        # behaviorally identical spellings must share one registry key
        assert make_estimator("mccatch?metric=euclidean").spec == "mccatch"
        # ... and behave identically too: the estimator is built from
        # the canonical params, so no phantom metric pin survives
        assert make_estimator("mccatch?metric=euclidean").metric is None

    def test_metric_spec_vs_prepared_space(self, dataset):
        est = make_estimator("mccatch?index=vptree&metric=manhattan")
        with pytest.raises(TypeError, match="different metric"):
            est.fit(MetricSpace(dataset))  # Euclidean space, manhattan spec
        matching = est.fit(MetricSpace(dataset, "manhattan"))
        raw = est.fit(dataset)
        assert np.array_equal(matching.training_scores, raw.training_scores)


class TestMcCatchServing:
    def test_mmap_load_scores_bit_identical(self, dataset, batch, tmp_path):
        model = make_estimator("mccatch?index=vptree").fit(dataset)
        scores = model.score_batch(batch)
        path = model.save(tmp_path / "mc.npz")
        loaded = FittedModel.load(path, mmap=True)
        assert isinstance(loaded, McCatchServingModel)
        assert np.array_equal(loaded.score_batch(batch), scores)
        assert np.array_equal(loaded.training_scores, model.training_scores)
        # the data matrix is served straight off the archive
        data = loaded.model.space.data
        backing = data if isinstance(data, np.memmap) else data.base
        assert isinstance(backing, np.memmap)

    def test_score_details_exposes_flagged(self, dataset, batch):
        model = make_estimator("mccatch?index=vptree").fit(dataset)
        details = model.score_details(batch)
        assert np.array_equal(details.scores, model.score_batch(batch))
        assert batch.shape[0] - 1 in details.flagged  # the far [40,-40,0] row

    def test_metric_data_supported(self):
        from repro.metric.strings import levenshtein

        names = ["SMITH", "SMYTH", "SMITT"] * 15 + ["XQWZKJY"]
        model = make_estimator("mccatch").fit(names, levenshtein)
        assert model.training_scores.shape == (len(names),)
        assert model.score_batch(["SMITH", "QQQQQQQ"]).shape == (2,)

    def test_baseline_estimator_rejects_metric(self, dataset):
        from repro.metric.strings import levenshtein

        with pytest.raises(TypeError, match="Euclidean"):
            make_estimator("lof").fit(["a", "b"], levenshtein)

    def test_baseline_estimator_rejects_non_euclidean_space(self, dataset):
        # a manhattan MetricSpace must fail loudly, not silently score L2
        with pytest.raises(TypeError, match="non-Euclidean"):
            make_estimator("lof?k=5").fit(MetricSpace(dataset, "manhattan"))
        model = make_estimator("lof?k=5").fit(MetricSpace(dataset))  # L2 fine
        assert model.training_scores.shape == (dataset.shape[0],)


class TestIndexMmapPersistence:
    def test_load_index_mmap_counts_identical(self, dataset, tmp_path):
        index = build_index(MetricSpace(dataset), kind="vptree")
        path = save_index(index, tmp_path / "idx.npz")
        plain = load_index(path)
        mapped = load_index(path, mmap=True)
        ids = np.arange(len(dataset))
        radii = np.array([0.5, 1.0, 2.0])
        assert np.array_equal(
            mapped.count_within_many(ids, radii), plain.count_within_many(ids, radii)
        )
        backing = mapped.space.data if isinstance(mapped.space.data, np.memmap) \
            else mapped.space.data.base
        assert isinstance(backing, np.memmap)

    def test_compressed_round_trips_but_rejects_mmap(self, dataset, tmp_path):
        index = build_index(MetricSpace(dataset), kind="balltree")
        path = save_index(index, tmp_path / "idx.npz", compressed=True)
        loaded = load_index(path)  # materialized load still works
        assert np.array_equal(
            loaded.count_within(np.arange(10), 1.0),
            index.count_within(np.arange(10), 1.0),
        )
        with pytest.raises(ValueError, match="compressed.*memory-mapped"):
            load_index(path, mmap=True)

    def test_unknown_model_format_rejected(self, tmp_path):
        np.savez(tmp_path / "bogus.npz", format=np.str_("wat"))
        with pytest.raises(ValueError, match="unsupported model format"):
            load_model(tmp_path / "bogus.npz")


class TestFitScoresGuards:
    class _NaNDetector(BaseDetector):
        name = "nan-det"

        def _score(self, X):
            scores = np.zeros(X.shape[0])
            scores[0] = np.nan
            return scores

    class _InfDetector(BaseDetector):
        name = "inf-det"

        def _score(self, X):
            scores = np.zeros(X.shape[0])
            scores[-1] = np.inf
            return scores

    def test_nan_scores_rejected_with_detector_name(self):
        with pytest.raises(RuntimeError, match=r"nan-det: 1 non-finite"):
            self._NaNDetector().fit_scores(np.zeros((4, 2)))

    def test_inf_scores_rejected(self):
        with pytest.raises(RuntimeError, match=r"inf-det: 1 non-finite.*row 3"):
            self._InfDetector().fit_scores(np.zeros((4, 2)))
