"""Tests for the 11 competitor baselines.

Each detector is checked for: correct output shape, score orientation
(planted singletons outrank inliers), determinism where promised, and
method-specific behaviours (LOF locality, iForest path lengths,
Gen2Out's groups, D.MCA's assignments, RDA's sparse split).
"""

import numpy as np
import pytest

from repro.baselines import (
    ABOD,
    ALOCI,
    DBOut,
    DMCA,
    FastABOD,
    Gen2Out,
    IForest,
    KNNOut,
    LOCI,
    LOF,
    ODIN,
    RDA,
    default_detectors,
    hyperparameter_grid,
    scalable_detectors,
)
from repro.baselines.iforest import average_path_length
from repro.eval.metrics import auroc


@pytest.fixture(scope="module")
def scattered():
    """300 inliers + 6 mutually distant singleton outliers."""
    rng = np.random.default_rng(1)
    inliers = rng.normal(0, 1, (300, 3))
    outliers = np.array(
        [[8, 0, 0], [0, 9, 0], [0, 0, 10], [-8, 0, 0], [0, -9, 0], [7, 7, 7]], float
    )
    X = np.vstack([inliers, outliers])
    y = np.zeros(306, dtype=int)
    y[300:] = 1
    return X, y


ALL_CLASSES = [ABOD, ALOCI, DBOut, DMCA, FastABOD, Gen2Out, IForest, LOCI, LOF, ODIN, RDA, KNNOut]


def make(cls):
    return cls(random_state=0) if not cls(**{}).deterministic else cls()


@pytest.mark.parametrize("cls", ALL_CLASSES)
class TestCommonContract:
    def test_shape_and_finiteness(self, cls, scattered):
        X, _ = scattered
        scores = make(cls).fit_scores(X)
        assert scores.shape == (X.shape[0],)
        assert np.isfinite(scores).all()

    def test_orientation_on_scattered_singletons(self, cls, scattered):
        X, y = scattered
        scores = make(cls).fit_scores(X)
        assert auroc(y, scores) > 0.8  # higher = more anomalous

    def test_seeded_repeatability(self, cls, scattered):
        X, _ = scattered
        det_a = cls(random_state=0) if not cls().deterministic else cls()
        det_b = cls(random_state=0) if not cls().deterministic else cls()
        assert np.array_equal(det_a.fit_scores(X), det_b.fit_scores(X))


class TestKNNFamily:
    def test_knnout_score_is_kth_distance(self):
        X = np.array([[0.0], [1.0], [3.0], [10.0]])
        scores = KNNOut(k=1).fit_scores(X)
        assert scores[0] == pytest.approx(1.0)
        assert scores[3] == pytest.approx(7.0)

    def test_odin_indegree(self):
        # A far point is nobody's 1-NN: in-degree 0 -> score 0 (max).
        X = np.array([[0.0], [0.1], [0.2], [50.0]])
        scores = ODIN(k=1).fit_scores(X)
        assert scores[3] == 0.0
        assert scores[3] >= scores.max() - 1e-12

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KNNOut(k=0)
        with pytest.raises(ValueError):
            ODIN(k=-1)


class TestLOF:
    def test_uniform_cloud_scores_near_one(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(400, 2))
        scores = LOF(k=10).fit_scores(X)
        assert 0.9 < np.median(scores) < 1.15

    def test_misses_dense_microcluster(self):
        """The paper's motivation: LOF fails on clustered outliers."""
        rng = np.random.default_rng(0)
        inliers = rng.normal(0, 1, (300, 2))
        mc = rng.normal(0, 0.01, (10, 2)) + [8.0, 8.0]  # tight clump
        X = np.vstack([inliers, mc])
        y = np.zeros(310, dtype=int)
        y[300:] = 1
        assert auroc(y, LOF(k=5).fit_scores(X)) < 0.9


class TestABOD:
    def test_fastabod_needs_k2(self):
        with pytest.raises(ValueError):
            FastABOD(k=1)

    def test_abod_duplicates_are_extreme(self):
        X = np.vstack([np.random.default_rng(0).normal(size=(50, 2)), [[9, 9]], [[9, 9]]])
        scores = ABOD().fit_scores(X)
        # Duplicate far points see zero angle variance -> most anomalous.
        assert scores[50] >= np.percentile(scores, 90)


class TestIForest:
    def test_average_path_length_known_values(self):
        assert average_path_length(np.array([1]))[0] == 0.0
        assert average_path_length(np.array([2]))[0] == 1.0
        # c(n) grows ~ 2 ln(n-1) + gamma
        assert 5.0 < average_path_length(np.array([256]))[0] < 15.0

    def test_scores_in_unit_interval(self, scattered):
        X, _ = scattered
        s = IForest(random_state=0).fit_scores(X)
        assert (s > 0).all() and (s < 1).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            IForest(n_trees=0)
        with pytest.raises(ValueError):
            IForest(subsample=1)


class TestDBOut:
    def test_radius_fraction_validation(self):
        with pytest.raises(ValueError):
            DBOut(radius_fraction=0.0)

    def test_scores_are_negated_counts(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0]])
        s = DBOut(radius_fraction=0.05).fit_scores(X)
        assert s[3] == -1.0  # only itself within radius


class TestLOCI:
    def test_quadratic_exact_runs(self, scattered):
        X, y = scattered
        s = LOCI().fit_scores(X[:150])
        assert np.isfinite(s).all()

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            LOCI(alpha=0.0)


class TestGen2Out:
    def test_reports_groups_with_scores(self):
        rng = np.random.default_rng(0)
        inliers = rng.normal(0, 1, (400, 2))
        mc = rng.normal(0, 0.05, (12, 2)) + [9.0, 9.0]
        X = np.vstack([inliers, mc])
        res = Gen2Out(random_state=0).fit(X)
        assert len(res.groups) >= 1
        assert res.group_scores.shape == (len(res.groups),)
        # The planted clump should dominate one detected group.
        best = max(res.groups, key=lambda g: len(set(g) & set(range(400, 412))))
        assert len(set(best) & set(range(400, 412))) >= 6

    def test_group_scores_sorted(self, scattered):
        X, _ = scattered
        res = Gen2Out(random_state=0).fit(X)
        s = res.group_scores
        assert np.all(s[:-1] >= s[1:])


class TestDMCA:
    def test_assignments_populated(self, scattered):
        X, _ = scattered
        det = DMCA(random_state=0)
        det.fit_scores(X)
        assert det.assignments_ is not None
        flat = [i for grp in det.assignments_ for i in grp]
        assert len(flat) == len(set(flat))  # disjoint assignment

    def test_psi_validation(self):
        with pytest.raises(ValueError):
            DMCA(psi=1)


class TestRDA:
    def test_outliers_absorbed_into_s(self, scattered):
        X, y = scattered
        det = RDA(n_iter=10, random_state=0)
        s = det.fit_scores(X)
        assert auroc(y, s) > 0.9

    def test_layer_validation(self):
        with pytest.raises(ValueError):
            RDA(n_layers=0)


class TestRegistry:
    def test_default_detectors_has_eleven(self):
        dets = default_detectors()
        assert len(dets) == 11
        assert len({d.name for d in dets}) == 11

    def test_scalable_subset(self):
        names = {d.name for d in scalable_detectors()}
        assert names == {"ALOCI", "iForest", "Gen2Out", "RDA"}

    @pytest.mark.parametrize(
        "name", ["ABOD", "ALOCI", "DB-Out", "D.MCA", "FastABOD", "Gen2Out",
                 "iForest", "LOCI", "LOF", "ODIN", "RDA", "kNN-Out"]
    )
    def test_grids_instantiate(self, name):
        grid = hyperparameter_grid(name, n=500)
        assert len(grid) >= 1

    def test_unknown_grid(self):
        with pytest.raises(KeyError):
            hyperparameter_grid("SVM", n=100)
