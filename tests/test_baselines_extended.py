"""Tests for the extended Table I baseline inventory.

DBSCAN / OPTICS / KMeans-- (clustering byproducts), LDOF / PLDOF,
SCiForest, GLOSH, Deep SVDD.
"""

import numpy as np
import pytest

from repro.baselines import (
    DBSCAN,
    GLOSH,
    LDOF,
    OPTICS,
    PLDOF,
    DeepSVDD,
    KMeansMinusMinus,
    SCiForest,
    all_detectors,
)
from repro.eval.metrics import auroc


@pytest.fixture(scope="module")
def scattered():
    rng = np.random.default_rng(1)
    inliers = rng.normal(0, 1, (300, 3))
    outliers = np.array(
        [[8, 0, 0], [0, 9, 0], [0, 0, 10], [-8, 0, 0], [0, -9, 0], [7, 7, 7]], float
    )
    X = np.vstack([inliers, outliers])
    y = np.zeros(306, dtype=int)
    y[300:] = 1
    return X, y


EXTENDED = [
    DBSCAN,
    OPTICS,
    KMeansMinusMinus,
    LDOF,
    PLDOF,
    SCiForest,
    GLOSH,
    DeepSVDD,
]


@pytest.mark.parametrize("cls", EXTENDED)
class TestCommonContract:
    def test_shape_and_orientation(self, cls, scattered):
        X, y = scattered
        det = cls(random_state=0) if not cls().deterministic else cls()
        scores = det.fit_scores(X)
        assert scores.shape == (X.shape[0],)
        assert np.isfinite(scores).all()
        assert auroc(y, scores) > 0.85

    def test_seeded_repeatability(self, cls, scattered):
        X, _ = scattered
        a = cls(random_state=0) if not cls().deterministic else cls()
        b = cls(random_state=0) if not cls().deterministic else cls()
        assert np.array_equal(a.fit_scores(X), b.fit_scores(X))


class TestDBSCAN:
    def test_labels_clusters_and_noise(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 0.3, (50, 2)), rng.normal(8, 0.3, (50, 2)),
                       [[4.0, 4.0]]])
        det = DBSCAN(eps=1.0, min_pts=5)
        labels = det.fit_labels(X)
        assert set(labels[:50]) == {labels[0]} and labels[0] >= 0
        assert set(labels[50:100]) == {labels[50]} and labels[50] != labels[0]
        assert labels[100] == -1  # the lone middle point is noise

    def test_auto_eps(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        labels = DBSCAN().fit_labels(X)
        assert (labels >= 0).sum() > 50  # heuristic eps clusters the bulk

    def test_min_pts_validation(self):
        with pytest.raises(ValueError):
            DBSCAN(min_pts=0)


class TestOPTICS:
    def test_ordering_is_permutation(self, scattered):
        X, _ = scattered
        det = OPTICS()
        det.fit_scores(X)
        assert sorted(det.ordering_) == list(range(X.shape[0]))

    def test_dense_points_have_low_reachability(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 0.2, (80, 2)), [[6.0, 6.0]]])
        scores = OPTICS(min_pts=5).fit_scores(X)
        assert scores[80] > np.percentile(scores[:80], 99)

    def test_min_pts_validation(self):
        with pytest.raises(ValueError):
            OPTICS(min_pts=1)


class TestKMeansMinusMinus:
    def test_trimmed_centroids_ignore_outliers(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 0.2, (100, 2)), [[50.0, 50.0]] * 3])
        scores = KMeansMinusMinus(n_clusters=1, n_outliers=3, random_state=0).fit_scores(X)
        assert scores[100:].min() > scores[:100].max()

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeansMinusMinus(n_clusters=0)


class TestLDOFFamily:
    def test_ldof_near_one_for_uniform(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 2))
        scores = LDOF(k=10).fit_scores(X)
        assert 0.4 < np.median(scores) < 1.6

    def test_pldof_prunes_most_points(self, scattered):
        X, y = scattered
        scores = PLDOF(keep_fraction=0.1, random_state=0).fit_scores(X)
        assert (scores == 0).sum() >= 0.85 * X.shape[0]
        assert auroc(y, scores) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            LDOF(k=0)
        with pytest.raises(ValueError):
            PLDOF(keep_fraction=0.0)


class TestSCiForest:
    def test_detects_clustered_anomalies(self):
        """SCiForest's raison d'etre: clustered anomalies [6]."""
        rng = np.random.default_rng(0)
        inliers = rng.normal(0, 1, (400, 2))
        clump = rng.normal(0, 0.03, (12, 2)) + [6.0, 6.0]
        X = np.vstack([inliers, clump])
        y = np.zeros(412, dtype=int)
        y[400:] = 1
        scores = SCiForest(n_trees=30, random_state=0).fit_scores(X)
        assert auroc(y, scores) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            SCiForest(n_trees=0)


class TestGLOSH:
    def test_cluster_cores_score_near_zero(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 0.3, (100, 2)), [[7.0, 7.0]]])
        scores = GLOSH().fit_scores(X)
        assert scores[100] > 0.5
        assert np.median(scores[:100]) < 0.5

    def test_scores_in_unit_interval(self, scattered):
        X, _ = scattered
        s = GLOSH().fit_scores(X)
        assert (s >= 0).all() and (s <= 1).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            GLOSH(min_pts=0)


class TestDeepSVDD:
    def test_embeds_inliers_near_center(self, scattered):
        X, y = scattered
        scores = DeepSVDD(random_state=0).fit_scores(X)
        assert np.median(scores[y == 1]) > np.median(scores[y == 0])


class TestInventory:
    def test_all_detectors_count(self):
        # 11 compared methods + the 13-method Table I inventory
        # (including the Sparx / XTreK / DIAD / DOIForest completion).
        dets = all_detectors()
        assert len(dets) == 24
        assert len({d.name for d in dets}) == 24
