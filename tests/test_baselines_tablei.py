"""Tests for the Table I completion baselines: Sparx, XTreK, DIAD, DOIForest.

Each detector must (a) satisfy the BaseDetector contract, (b) separate
an easy planted anomaly from a Gaussian bulk (AUROC well above chance),
(c) be reproducible under a fixed seed, and (d) expose the extras it
advertises (XTreK/DIAD explanations, Sparx/DOIForest parameters).
"""

import numpy as np
import pytest

from repro.baselines import DIAD, DOIForest, Sparx, XTreK, all_detectors
from repro.baselines.features import TABLE1
from repro.eval import auroc


@pytest.fixture(scope="module")
def easy_dataset():
    """300 inliers around the origin plus 6 obvious scattered outliers."""
    rng = np.random.default_rng(42)
    inliers = rng.normal(0, 1, (300, 4))
    outliers = rng.uniform(8, 12, (6, 4)) * rng.choice([-1, 1], (6, 4))
    X = np.vstack([inliers, outliers])
    y = np.zeros(X.shape[0], dtype=bool)
    y[300:] = True
    return X, y


ALL_NEW = [
    lambda: Sparx(random_state=0),
    lambda: XTreK(random_state=0),
    lambda: DIAD(),
    lambda: DOIForest(n_trees=16, n_generations=2, random_state=0),
]


@pytest.mark.parametrize("make", ALL_NEW)
class TestDetectorContract:
    def test_scores_shape_and_finiteness(self, make, easy_dataset):
        X, _ = easy_dataset
        scores = make().fit_scores(X)
        assert scores.shape == (X.shape[0],)
        assert np.isfinite(scores).all()

    def test_separates_easy_outliers(self, make, easy_dataset):
        X, y = easy_dataset
        scores = make().fit_scores(X)
        assert auroc(y, scores) > 0.9

    def test_seeded_reproducibility(self, make, easy_dataset):
        X, _ = easy_dataset
        assert np.allclose(make().fit_scores(X), make().fit_scores(X))

    def test_registered_in_table1(self, make):
        assert make().name in TABLE1


class TestSparx:
    def test_invalid_params(self):
        with pytest.raises(ValueError, match="n_chains"):
            Sparx(n_chains=0)
        with pytest.raises(ValueError, match="depth"):
            Sparx(depth=0)

    def test_deeper_chains_refine_scores(self, easy_dataset):
        X, y = easy_dataset
        shallow = Sparx(n_chains=8, depth=2, random_state=0).fit_scores(X)
        deep = Sparx(n_chains=8, depth=12, random_state=0).fit_scores(X)
        # Both separate, the deep one at least as well.
        assert auroc(y, deep) >= auroc(y, shallow) - 0.05

    def test_constant_feature_handled(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.normal(size=100), np.full(100, 3.0)])
        scores = Sparx(n_chains=4, depth=4, random_state=0).fit_scores(X)
        assert np.isfinite(scores).all()


class TestXTreK:
    def test_invalid_params(self):
        with pytest.raises(ValueError, match="max_depth"):
            XTreK(max_depth=0)
        with pytest.raises(ValueError, match="min_leaf"):
            XTreK(min_leaf=0)

    def test_explanation_path(self, easy_dataset):
        X, _ = easy_dataset
        det = XTreK(random_state=0)
        det.fit_scores(X)
        path = det.explain(X[-1])
        assert path[-1].startswith("leaf score")
        assert all(("<=" in step) or (">" in step) for step in path[:-1])

    def test_explain_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit_scores"):
            XTreK().explain([0.0])

    def test_tree_depth_bounded(self, easy_dataset):
        X, _ = easy_dataset
        det = XTreK(max_depth=2, random_state=0)
        det.fit_scores(X)
        # No explanation path can exceed max_depth splits + leaf line.
        for row in X[::50]:
            assert len(det.explain(row)) <= 3

    def test_constant_data(self):
        X = np.ones((40, 3))
        scores = XTreK(random_state=0).fit_scores(X)
        assert np.allclose(scores, scores[0])


class TestDIAD:
    def test_invalid_params(self):
        with pytest.raises(ValueError, match="n_bins"):
            DIAD(n_bins=1)
        with pytest.raises(ValueError, match="n_pairs"):
            DIAD(n_pairs=-1)

    def test_explanations_sum_to_score(self, easy_dataset):
        X, _ = easy_dataset
        det = DIAD(n_pairs=2)
        scores = det.fit_scores(X)
        full = det._contributions.sum(axis=1)
        assert np.allclose(full, scores)

    def test_explain_names_top_terms(self, easy_dataset):
        X, _ = easy_dataset
        det = DIAD()
        det.fit_scores(X)
        top = det.explain(len(X) - 1, top=2)
        assert len(top) == 2
        assert all(name.startswith("feature[") for name, _ in top)
        assert top[0][1] >= top[1][1]

    def test_explain_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit_scores"):
            DIAD().explain(0)

    def test_univariate_mode(self, easy_dataset):
        X, y = easy_dataset
        scores = DIAD(n_pairs=0).fit_scores(X)
        assert auroc(y, scores) > 0.9

    def test_single_feature_data(self):
        rng = np.random.default_rng(1)
        X = np.concatenate([rng.normal(0, 1, 200), [25.0]]).reshape(-1, 1)
        scores = DIAD().fit_scores(X)
        # Histogram terms tie within a bin, so the planted point shares
        # the top score with the other members of the stretched tail bin
        # — but nothing may beat it.
        assert scores[200] == scores.max()


class TestDOIForest:
    def test_invalid_params(self):
        with pytest.raises(ValueError, match="n_trees"):
            DOIForest(n_trees=1)
        with pytest.raises(ValueError, match="n_generations"):
            DOIForest(n_generations=-1)
        with pytest.raises(ValueError, match="mutation_rate"):
            DOIForest(mutation_rate=1.5)

    def test_zero_generations_is_plain_forest(self, easy_dataset):
        X, y = easy_dataset
        scores = DOIForest(n_trees=16, n_generations=0, random_state=0).fit_scores(X)
        assert auroc(y, scores) > 0.9

    def test_evolution_does_not_hurt(self, easy_dataset):
        X, y = easy_dataset
        plain = DOIForest(n_trees=16, n_generations=0, random_state=0).fit_scores(X)
        evolved = DOIForest(n_trees=16, n_generations=3, random_state=0).fit_scores(X)
        assert auroc(y, evolved) >= auroc(y, plain) - 0.05


class TestRegistry:
    def test_all_detectors_includes_new_methods(self):
        names = {d.name for d in all_detectors()}
        assert {"Sparx", "XTreK", "DIAD", "DOIForest"} <= names

    def test_every_detector_name_in_table1(self):
        for det in all_detectors():
            assert det.name in TABLE1, det.name
