"""Differential suite for the level-synchronous bulk builders (PR 7).

The array bulk-load must not move a single count: ``count_within_many``
over a bulk-built :class:`~repro.index.base.FlatTree` has to agree bit
for bit with the frozen per-insert builders (``build="insert"``) and
with the brute-force oracle — for M-tree, Slim-tree, and cover tree,
on vector, string, and tree data, under both walk modes, including the
regression classes: radius 0 with duplicate points, radii tying exact
pairwise distances, and negative radii.

Beyond counts, the bulk trees must be *valid* metric trees: the
element permutation intact, covering radii bounding every member,
``d_parent``/``d_elem`` exact under the metric, sizes consistent with
the slices, and Slim-down applicable in place.
"""

import numpy as np
import pytest

from repro.core.mccatch import McCatch
from repro.index import (
    BruteForceIndex,
    CoverTree,
    MTree,
    SlimTree,
)
from repro.index.factory import build_index
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein
from repro.metric.trees import LabeledTree, tree_edit_distance

BULK_KINDS = [MTree, SlimTree, CoverTree]


@pytest.fixture(scope="module")
def vspace():
    """Vector data with duplicates and a tight planted pair."""
    rng = np.random.default_rng(17)
    X = np.vstack(
        [
            rng.normal(0, 1, (120, 2)),
            np.zeros((6, 2)),  # exact duplicates
            [[7.0, 7.0], [7.0, 7.0], [7.2, 7.0]],  # duplicate outlier pair
        ]
    )
    return MetricSpace(X)


@pytest.fixture(scope="module")
def sspace():
    rng = np.random.default_rng(23)
    alphabet = list("ABCD")
    words = ["".join(rng.choice(alphabet, size=rng.integers(1, 8))) for _ in range(40)]
    words += ["AAAA"] * 4  # duplicates for the radius-0 class
    return MetricSpace(words, levenshtein)


@pytest.fixture(scope="module")
def tspace():
    rng = np.random.default_rng(29)

    def random_tree(depth: int) -> LabeledTree:
        label = "abcd"[int(rng.integers(4))]
        if depth == 0:
            return LabeledTree(label)
        children = [random_tree(depth - 1) for _ in range(int(rng.integers(0, 3)))]
        return LabeledTree(label, children)

    trees = [random_tree(2) for _ in range(16)]
    trees += [LabeledTree("a", [LabeledTree("b")])] * 3  # duplicates
    return MetricSpace(trees, tree_edit_distance)


def boundary_radii(space: MetricSpace) -> np.ndarray:
    """Ladder heavy on the regression classes: negative, 0, ties, big."""
    d = space.distances(0, np.arange(min(len(space), 12)))
    ties = [float(v) for v in d if v > 0][:4]
    diam = float(space.distances(0, np.arange(len(space))).max())
    ladder = [-1.0, 0.0, 0.0, 1e-9] + ties + [0.5 * diam, diam, 1.5 * diam + 1.0]
    return np.sort(np.array(ladder, dtype=np.float64))


SPACES = ["vspace", "sspace", "tspace"]


def _make(cls, space, *, build, walk="level", small=True):
    kwargs = {"build": build, "walk": walk}
    if cls is CoverTree:
        kwargs["leaf_size"] = 4 if small else 16
    else:
        kwargs["capacity"] = 4 if small else 16
    return cls(space, **kwargs)


@pytest.mark.parametrize("cls", BULK_KINDS)
@pytest.mark.parametrize("fixture", SPACES)
class TestBulkMatchesInsertAndBruteForce:
    def test_count_within_many_bit_identical(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        expected = BruteForceIndex(space).count_within_many(q, radii)
        insert = _make(cls, space, build="insert").count_within_many(q, radii)
        bulk = _make(cls, space, build="bulk").count_within_many(q, radii)
        assert np.array_equal(insert, expected)
        assert np.array_equal(bulk, expected)

    def test_both_walks_agree(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        expected = BruteForceIndex(space).count_within_many(q, radii)
        for walk in ("level", "stack"):
            got = _make(cls, space, build="bulk", walk=walk).count_within_many(q, radii)
            assert np.array_equal(got, expected), walk

    def test_single_radius_count_within(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        brute = BruteForceIndex(space)
        tree = _make(cls, space, build="bulk")
        q = np.arange(len(space))
        for r in boundary_radii(space):
            assert np.array_equal(
                tree.count_within(q, float(r)), brute.count_within(q, float(r))
            )


@pytest.mark.parametrize("cls", BULK_KINDS)
@pytest.mark.parametrize("fixture", SPACES)
class TestBulkStructuralInvariants:
    def test_permutation_and_slices(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        flat = _make(cls, space, build="bulk").flat
        assert np.array_equal(np.sort(flat.elems), np.arange(len(space)))
        assert np.all(flat.size == flat.elem_hi - flat.elem_lo)
        # Children partition the parent's element slice contiguously.
        for node in range(flat.n_nodes):
            lo, hi = int(flat.child_lo[node]), int(flat.child_hi[node])
            if hi <= lo:
                continue
            assert flat.elem_lo[lo] == flat.elem_lo[node]
            assert flat.elem_hi[hi - 1] == flat.elem_hi[node]
            assert np.array_equal(flat.elem_lo[lo + 1 : hi], flat.elem_hi[lo : hi - 1])

    def test_covering_radii_bound_members(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        flat = _make(cls, space, build="bulk").flat
        sizes = (flat.elem_hi - flat.elem_lo).astype(np.intp)
        centers = np.repeat(flat.center, sizes)
        members = flat.elems[
            np.concatenate(
                [np.arange(lo, hi) for lo, hi in zip(flat.elem_lo, flat.elem_hi)]
            )
        ]
        d = space.paired_distances(centers, members)
        bound = np.repeat(flat.radius, sizes)
        assert np.all(d <= bound + 1e-12)

    def test_d_parent_and_d_elem_exact(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        flat = _make(cls, space, build="bulk").flat
        if flat.d_parent is not None:
            for node in range(flat.n_nodes):
                lo, hi = int(flat.child_lo[node]), int(flat.child_hi[node])
                for child in range(lo, hi):
                    want = space.distance(
                        int(flat.center[node]), int(flat.center[child])
                    )
                    assert flat.d_parent[child] == pytest.approx(want, abs=1e-12)
        if flat.d_elem is not None:
            leaves = np.flatnonzero(flat.child_hi == flat.child_lo)
            for node in leaves:
                lo, hi = int(flat.elem_lo[node]), int(flat.elem_hi[node])
                want = space.paired_distances(
                    np.full(hi - lo, flat.center[node], dtype=np.intp),
                    flat.elems[lo:hi],
                )
                assert np.allclose(flat.d_elem[lo:hi], want, atol=1e-12)


@pytest.mark.parametrize("fixture", SPACES)
def test_slim_down_valid_on_bulk_trees(fixture, request):
    """Slim-down must run in place on a bulk tree and keep counts exact."""
    space = request.getfixturevalue(fixture)
    radii = boundary_radii(space)
    q = np.arange(len(space))
    expected = BruteForceIndex(space).count_within_many(q, radii)
    tree = SlimTree(space, capacity=4, build="bulk", slim_down=True)
    assert tree.root is None  # stayed on the flat path
    assert np.array_equal(tree.count_within_many(q, radii), expected)
    flat = tree.flat
    assert np.array_equal(np.sort(flat.elems), np.arange(len(space)))
    sizes = (flat.elem_hi - flat.elem_lo).astype(np.intp)
    centers = np.repeat(flat.center, sizes)
    members = flat.elems[
        np.concatenate(
            [np.arange(lo, hi) for lo, hi in zip(flat.elem_lo, flat.elem_hi)]
        )
    ]
    d = space.paired_distances(centers, members)
    assert np.all(d <= np.repeat(flat.radius, sizes) + 1e-12)


class TestBuildSelection:
    def test_factory_threads_build(self, vspace):
        for kind, cls in [("mtree", MTree), ("slimtree", SlimTree), ("covertree", CoverTree)]:
            tree = build_index(vspace, kind=kind, build="insert")
            assert isinstance(tree, cls)
            assert tree.root is not None
            tree = build_index(vspace, kind=kind, build="bulk")
            assert tree.root is None

    def test_unknown_build_mode_rejected(self, vspace):
        with pytest.raises(ValueError, match="unknown build"):
            build_index(vspace, kind="mtree", build="lazy")
        with pytest.raises(ValueError, match="unknown build"):
            MTree(vspace, build="lazy")

    def test_bulk_native_kinds_reject_insert(self, vspace):
        for kind in ("vptree", "balltree"):
            with pytest.raises(ValueError, match="no insertion builder"):
                build_index(vspace, kind=kind, build="insert")
            # bulk is their native path: accepted as a no-op selector.
            build_index(vspace, kind=kind, build="bulk")

    def test_kinds_without_bulk_fail_loudly(self, vspace):
        for kind in ("brute", "ckdtree"):
            with pytest.raises(ValueError, match="no build="):
                build_index(vspace, kind=kind, build="bulk")

    def test_estimator_spec_round_trip(self):
        from repro.api import make_estimator, spec_of

        est = make_estimator("mccatch?build=insert&index=slimtree")
        assert est.detector.index_build == "insert"
        assert spec_of(est.detector) == "mccatch?build=insert&index=slimtree"
        # The default (None) canonicalizes away.
        assert "build" not in spec_of(McCatch(index="slimtree"))

    def test_mccatch_end_to_end_on_bulk_trees(self, vspace):
        # The pipeline's radii ladder hangs off diameter_estimate(),
        # which legitimately differs between builders — so end-to-end
        # bit-parity across builds is not guaranteed.  What is: the
        # bulk path must run the whole pipeline and flag the planted
        # outlier pair just like the insert path does.
        a, b = (
            McCatch(index="slimtree", index_build=build).fit(vspace)
            for build in ("bulk", "insert")
        )
        n = len(vspace)
        planted = {n - 3, n - 2, n - 1}  # the 7,7-corner pair + neighbor
        for result in (a, b):
            assert result.point_scores.shape == (n,)
            assert np.all(np.isfinite(result.point_scores))
            flagged = {
                int(i) for mc in result.microclusters for i in mc.indices
            }
            assert planted <= flagged
