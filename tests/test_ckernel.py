"""The compiled walk kernel: differential correctness and the loader.

The compiled walk's contract is bit-identity with both numpy walks —
:func:`repro.index.base.level_count_walk` and the node-major
:func:`repro.index.base.frontier_count_walk` — for every flat tree
family, on vector, string, and tree data, across the regression radii
(negative, 0 with duplicates, ties on exact pairwise distances), and
through every resumable-frontier split the tree-sharding executor can
produce.  On top of that sit the loader's guarantees: the on-disk
``.so`` cache is keyed by source + toolchain (hit on re-probe, miss on
a source edit), a torn or foreign object under the right name is
rebuilt once, a missing compiler degrades to the numpy walk with one
loud warning, ``REPRO_NO_CKERNEL=1`` forces the same fallback, and two
processes racing the first build both load an intact library.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from test_flat_trees import boundary_radii

from repro.api import make_estimator
from repro.engine import BatchQueryEngine, ShardedWalkExecutor
from repro.index import (
    BallTree,
    BruteForceIndex,
    CoverTree,
    MTree,
    SlimTree,
    VPTree,
    build_index,
)
from repro.index.base import (
    count_walk,
    frontier_count_walk,
    level_count_walk,
    open_tree_frontier,
    resolve_walk,
    split_frontier,
)
from repro.index.ckernel import (
    CKernelError,
    compiled_count_walk,
    kernel_available,
    kernel_info,
)
from repro.index.ckernel import loader
from repro.io.indexes import index_payload, load_index, save_index
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein
from repro.metric.trees import LabeledTree, tree_edit_distance

FLAT_KINDS = [VPTree, BallTree, CoverTree, MTree, SlimTree]
WORKER_COUNTS = [1, 2, 3, 7]

needs_kernel = pytest.mark.skipif(
    not kernel_available(),
    reason="C kernel unavailable (no compiler, or REPRO_NO_CKERNEL set)",
)


@pytest.fixture(scope="module")
def vspace():
    """Vector data with duplicates and a tight planted pair."""
    rng = np.random.default_rng(5)
    X = np.vstack(
        [
            rng.normal(0, 1, (70, 2)),
            np.zeros((5, 2)),  # exact duplicates
            [[7.0, 7.0], [7.0, 7.0], [7.2, 7.0]],  # duplicate outlier pair
        ]
    )
    return MetricSpace(X)


@pytest.fixture(scope="module")
def wide_vspace():
    """5-d vector data: exercises the generic (band-emitting) rect path
    instead of the fused 1-/2-d euclidean columns."""
    rng = np.random.default_rng(7)
    X = np.vstack([rng.normal(0, 1, (60, 5)), np.zeros((4, 5))])
    return MetricSpace(X)


@pytest.fixture(scope="module")
def sspace():
    rng = np.random.default_rng(9)
    alphabet = list("ABCD")
    words = ["".join(rng.choice(alphabet, size=rng.integers(1, 8))) for _ in range(30)]
    words += ["AAAA"] * 3  # duplicates for the radius-0 class
    return MetricSpace(words, levenshtein)


@pytest.fixture(scope="module")
def tspace():
    rng = np.random.default_rng(13)

    def random_tree(depth: int) -> LabeledTree:
        label = "abcd"[int(rng.integers(4))]
        if depth == 0:
            return LabeledTree(label)
        children = [random_tree(depth - 1) for _ in range(int(rng.integers(0, 3)))]
        return LabeledTree(label, children)

    trees = [random_tree(2) for _ in range(12)]
    trees += [LabeledTree("a", [LabeledTree("b")])] * 2  # duplicates
    return MetricSpace(trees, tree_edit_distance)


SPACES = ["vspace", "wide_vspace", "sspace", "tspace"]


def hard_radii(space: MetricSpace) -> np.ndarray:
    """boundary_radii plus the negative-radius regression rung."""
    return np.sort(np.concatenate([[-1.0, -0.5], boundary_radii(space)]))


@needs_kernel
class TestCompiledDifferential:
    """compiled == level == stack, bit for bit, everywhere."""

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    @pytest.mark.parametrize("fixture", SPACES)
    def test_all_families_all_spaces(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = hard_radii(space)
        q = np.arange(len(space))
        flat = cls(space).flat
        level = level_count_walk(space, q, radii, flat)
        assert np.array_equal(compiled_count_walk(space, q, radii, flat), level)
        assert np.array_equal(frontier_count_walk(space, q, radii, flat), level)

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_subset_queries(self, cls, vspace):
        radii = hard_radii(vspace)
        q = np.arange(1, len(vspace), 3)
        flat = cls(vspace, np.arange(0, len(vspace), 2)).flat
        assert np.array_equal(
            compiled_count_walk(vspace, q, radii, flat),
            level_count_walk(vspace, q, radii, flat),
        )

    @pytest.mark.parametrize("fixture", SPACES)
    def test_small_capacity_leaves(self, fixture, request):
        """Tiny leaves force deep frontiers and many single-rung calls."""
        space = request.getfixturevalue(fixture)
        radii = hard_radii(space)
        q = np.arange(len(space))
        flat = MTree(space, capacity=4).flat
        assert np.array_equal(
            compiled_count_walk(space, q, radii, flat),
            level_count_walk(space, q, radii, flat),
        )

    def test_empty_radii_and_empty_queries(self, vspace):
        flat = VPTree(vspace).flat
        zero_r = compiled_count_walk(
            vspace, np.arange(5), np.empty(0, dtype=np.float64), flat
        )
        assert zero_r.shape == (5, 0)
        zero_q = compiled_count_walk(
            vspace, np.empty(0, dtype=np.intp), np.array([1.0]), flat
        )
        assert zero_q.shape == (0, 1)

    @pytest.mark.parametrize("pieces", WORKER_COUNTS)
    @pytest.mark.parametrize("fixture", SPACES)
    def test_frontier_resume_piece_invariance(self, pieces, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        flat = VPTree(space).flat
        expected = level_count_walk(space, q, radii, flat)
        partial, frontier = open_tree_frontier(space, q, radii, flat, min_nodes=pieces)
        for piece in split_frontier(frontier, pieces):
            partial += compiled_count_walk(space, q, radii, flat, frontier=piece)
        assert np.array_equal(partial, expected)

    @pytest.mark.parametrize("cls", [MTree, SlimTree])
    def test_frontier_resume_keeps_caller_arrays(self, cls, vspace):
        """The kernel's in-place d_parent filter must never touch a
        caller-owned resumable frontier (the executor reuses pieces)."""
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        flat = cls(vspace, capacity=4).flat
        _, frontier = open_tree_frontier(vspace, q, radii, flat, min_nodes=3)
        for piece in split_frontier(frontier, 3):
            before = [None if a is None else a.copy() for a in piece]
            compiled_count_walk(vspace, q, radii, flat, frontier=piece)
            for kept, orig in zip(piece, before):
                assert (kept is None) == (orig is None)
                if kept is not None:
                    assert np.array_equal(kept, orig)

    def test_stats_counters_populated(self, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        flat = VPTree(vspace).flat
        stats: dict = {}
        counts = compiled_count_walk(vspace, q, radii, flat, stats=stats)
        assert np.array_equal(counts, level_count_walk(vspace, q, radii, flat))
        for key in ("steps", "entries", "distance_calls",
                    "searchsorted_calls", "scatter_calls"):
            assert stats[key] > 0

    def test_walk_attribute_selects_compiled(self, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        auto = VPTree(vspace)
        compiled = VPTree(vspace, walk="compiled")
        level = VPTree(vspace, walk="level")
        assert auto.walk == "auto" and resolve_walk(auto.walk) == "compiled"
        assert np.array_equal(
            compiled.count_within_many(q, radii), level.count_within_many(q, radii)
        )
        assert np.array_equal(
            auto.count_within_many(q, radii), level.count_within_many(q, radii)
        )


@needs_kernel
class TestShardedCompiled:
    """Threaded sharding over the GIL-free kernel stays bit-identical."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("shard_by", ["query", "tree"])
    def test_thread_backend_bit_identical(self, workers, shard_by, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        tree = VPTree(vspace, walk="level")
        expected = tree.count_within_many(q, radii)
        got = ShardedWalkExecutor(
            tree, workers=workers, backend="thread", shard_by=shard_by,
            walk="compiled",
        ).count_within_many(q, radii)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("fixture", SPACES)
    def test_every_space_two_workers(self, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        tree = VPTree(space, walk="level")
        expected = tree.count_within_many(q, radii)
        for shard_by in ("query", "tree"):
            got = ShardedWalkExecutor(
                tree, workers=2, backend="thread", shard_by=shard_by,
                walk="compiled",
            ).count_within_many(q, radii)
            assert np.array_equal(got, expected)

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_every_family_through_executor(self, cls, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        tree = cls(vspace, walk="level")
        expected = tree.count_within_many(q, radii)
        got = ShardedWalkExecutor(
            tree, workers=3, backend="thread", shard_by="tree", walk="compiled"
        ).count_within_many(q, radii)
        assert np.array_equal(got, expected)

    def test_engine_walk_override_bit_identical(self, vspace):
        radii = np.unique(boundary_radii(vspace))[1:]
        tree = VPTree(vspace, walk="level")
        c = 10
        reference = BatchQueryEngine(tree, mode="batched").self_join_counts(
            radii, max_cardinality=c
        )
        compiled = BatchQueryEngine(
            tree, mode="batched", walk="compiled"
        ).self_join_counts(radii, max_cardinality=c)
        sharded = BatchQueryEngine(
            tree, mode="parallel", workers=2, shard_by="tree", walk="compiled"
        ).self_join_counts(radii, max_cardinality=c)
        assert np.array_equal(compiled, reference)
        assert np.array_equal(sharded, reference)


class TestWalkSelection:
    """Dispatch, validation, and the loud-but-graceful fallback."""

    def test_auto_resolves_to_available_walk(self):
        resolved = resolve_walk("auto")
        assert resolved == ("compiled" if kernel_available() else "level")
        assert resolve_walk("stack") == "stack"

    def test_count_walk_rejects_unknown_mode(self, vspace):
        with pytest.raises(ValueError, match="walk"):
            count_walk(
                vspace, np.arange(3), np.array([1.0]), VPTree(vspace).flat,
                walk="recursive",
            )
        with pytest.raises(ValueError, match="walk"):
            VPTree(vspace, walk="recursive")

    def test_stack_walk_rejects_frontier(self, vspace):
        flat = VPTree(vspace).flat
        q = np.arange(len(vspace))
        radii = boundary_radii(vspace)
        _, frontier = open_tree_frontier(vspace, q, radii, flat, min_nodes=2)
        with pytest.raises(ValueError, match="stack"):
            count_walk(vspace, q, radii, flat, walk="stack",
                       frontier=split_frontier(frontier, 2)[0])

    def test_disabled_kernel_falls_back_with_one_warning(self, vspace, monkeypatch):
        monkeypatch.setenv(loader.ENV_DISABLE, "1")
        loader.reset()
        try:
            q = np.arange(len(vspace))
            radii = boundary_radii(vspace)
            flat = VPTree(vspace).flat
            assert not kernel_available()
            assert kernel_info()["disabled"]
            with pytest.raises(CKernelError):
                compiled_count_walk(vspace, q, radii, flat)
            with pytest.warns(RuntimeWarning, match="REPRO_NO_CKERNEL"):
                counts = count_walk(vspace, q, radii, flat, walk="compiled")
            assert np.array_equal(counts, level_count_walk(vspace, q, radii, flat))
            # The warning fires once per process, not once per call.
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                count_walk(vspace, q, radii, flat, walk="compiled")
        finally:
            monkeypatch.delenv(loader.ENV_DISABLE, raising=False)
            loader.reset()

    def test_engine_rejects_walk_on_non_flat_index(self, vspace):
        with pytest.raises(ValueError, match="walk"):
            BatchQueryEngine(BruteForceIndex(vspace), walk="compiled")

    def test_factory_rejects_walk_on_non_flat_kind(self, vspace):
        with pytest.raises(ValueError, match="walk"):
            build_index(vspace, kind="ckdtree", walk="compiled")

    def test_factory_auto_kind_honors_walk_request(self, vspace):
        # auto + walk request resolves to a flat tree, not cKDTree.
        index = build_index(vspace, kind="auto", walk="level")
        assert hasattr(index, "flat") and index.walk == "level"

    def test_spec_round_trip(self):
        estimator = make_estimator("mccatch?index=vptree&walk=compiled")
        assert estimator.detector.index_walk == "compiled"
        assert "walk=compiled" in estimator.spec
        assert make_estimator(estimator.spec).spec == estimator.spec
        # The family default (auto) canonicalizes away.
        assert "walk" not in make_estimator("mccatch?index=vptree").spec

    def test_cli_detect_walk_flag(self, tmp_path, capsys):
        from repro.cli import main

        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (80, 2)), [[9.0, 9.0]]])
        path = tmp_path / "data.csv"
        np.savetxt(path, X, delimiter=",")
        assert main(["detect", str(path), "--index", "vptree",
                     "--walk", "compiled"]) == 0
        assert "microclusters" in capsys.readouterr().out

    def test_persistence_keeps_walk_and_records_kernel(self, vspace, tmp_path):
        tree = VPTree(vspace, walk="compiled")
        payload = index_payload(tree)
        assert str(payload["walk"]) == "compiled"
        assert "ckernel_available" in payload
        loaded = load_index(save_index(tree, tmp_path / "t.npz"), vspace)
        assert loaded.walk == "compiled"
        # "auto" survives as "auto": availability belongs to the loader.
        auto = VPTree(vspace)
        loaded = load_index(save_index(auto, tmp_path / "a.npz"), vspace)
        assert loaded.walk == "auto"
        q = np.arange(len(vspace))
        radii = boundary_radii(vspace)
        assert np.array_equal(
            loaded.count_within_many(q, radii), auto.count_within_many(q, radii)
        )


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """A private, empty kernel cache; restores global state afterwards."""
    monkeypatch.setenv(loader.ENV_CACHE, str(tmp_path / "ckernel"))
    monkeypatch.delenv(loader.ENV_DISABLE, raising=False)
    loader.reset()
    yield tmp_path / "ckernel"
    monkeypatch.undo()
    loader.reset()


def _so_files(cache: Path) -> list[Path]:
    return sorted(cache.glob("*.so"))


@pytest.mark.skipif(
    loader.find_compiler() is None, reason="no C compiler on this machine"
)
class TestLoaderCache:
    """Build cache semantics: keying, reuse, invalidation, torn objects."""

    def test_first_build_publishes_keyed_so(self, fresh_cache):
        kernel = loader.get_kernel()
        assert kernel is not None
        sos = _so_files(fresh_cache)
        assert sos == [fresh_cache / f"repro_ckernel_{kernel.key}.so"]
        # No torn temporaries left behind by the mkstemp+rename publish.
        assert not list(fresh_cache.glob("*.tmp.so"))

    def test_reprobe_hits_cache_without_rebuilding(self, fresh_cache):
        assert loader.get_kernel() is not None
        [so] = _so_files(fresh_cache)
        stamp = so.stat().st_mtime_ns
        loader.reset()
        calls = []
        original = loader._compile

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        loader._compile = counting
        try:
            assert loader.get_kernel() is not None
        finally:
            loader._compile = original
        assert calls == []  # cache hit: same key, no compile
        assert so.stat().st_mtime_ns == stamp

    def test_source_change_misses_cache(self, fresh_cache, tmp_path, monkeypatch):
        assert loader.get_kernel() is not None
        first = loader.get_kernel().key
        edited = tmp_path / "kernel_edited.c"
        edited.write_text(loader.SOURCE_PATH.read_text() + "\n/* edited */\n")
        monkeypatch.setattr(loader, "SOURCE_PATH", edited)
        loader.reset()
        kernel = loader.get_kernel()
        assert kernel is not None
        assert kernel.key != first
        assert len(_so_files(fresh_cache)) == 2  # both keys live side by side

    def test_key_covers_source_banner_and_flags(self):
        base = loader.cache_key("int x;", "cc 1.0")
        assert loader.cache_key("int y;", "cc 1.0") != base
        assert loader.cache_key("int x;", "cc 2.0") != base

    def test_torn_so_is_rebuilt_once(self, fresh_cache, vspace):
        # Plant the torn object *before* anything dlopens from this
        # cache: overwriting a mapped .so in place would SIGBUS the
        # process, which is exactly why the loader replaces the file
        # (new inode) instead of rewriting it.
        key = loader.cache_key(
            loader.SOURCE_PATH.read_text(),
            loader.compiler_banner(loader.find_compiler()),
        )
        so = fresh_cache / f"repro_ckernel_{key}.so"
        so.parent.mkdir(parents=True, exist_ok=True)
        so.write_bytes(b"this is not a shared object")
        kernel = loader.get_kernel()
        assert kernel is not None  # rebuilt from source under the same key
        assert so.stat().st_size > 1000
        q = np.arange(len(vspace))
        radii = boundary_radii(vspace)
        flat = VPTree(vspace).flat
        assert np.array_equal(
            compiled_count_walk(vspace, q, radii, flat),
            level_count_walk(vspace, q, radii, flat),
        )

    def test_missing_compiler_degrades_loudly(self, fresh_cache, vspace, monkeypatch):
        monkeypatch.setenv("CC", "definitely-not-a-compiler")
        loader.reset()
        assert loader.find_compiler() is None
        assert not kernel_available()
        info = kernel_info()
        assert not info["available"] and "compiler" in info["error"]
        q = np.arange(len(vspace))
        radii = boundary_radii(vspace)
        flat = VPTree(vspace).flat
        with pytest.warns(RuntimeWarning, match="compiler"):
            counts = count_walk(vspace, q, radii, flat, walk="compiled")
        assert np.array_equal(counts, level_count_walk(vspace, q, radii, flat))

    def test_concurrent_first_build_from_two_processes(self, fresh_cache):
        """Two processes race the first build; both must load an intact
        library (mkstemp + atomic rename, no torn .so)."""
        script = (
            "import numpy as np\n"
            "from repro.index.ckernel import compiled_count_walk, kernel_available\n"
            "from repro.index import VPTree\n"
            "from repro.metric.base import MetricSpace\n"
            "assert kernel_available()\n"
            "space = MetricSpace(np.random.default_rng(0).normal(size=(50, 2)))\n"
            "tree = VPTree(space)\n"
            "counts = compiled_count_walk(\n"
            "    space, tree.ids, np.array([0.0, 0.5, 2.0]), tree.flat)\n"
            "assert counts.shape == (50, 3)\n"
        )
        env = dict(os.environ)
        env[loader.ENV_CACHE] = str(fresh_cache)
        env.pop(loader.ENV_DISABLE, None)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        for p in procs:
            _, err = p.communicate(timeout=300)
            assert p.returncode == 0, err.decode()
        assert len(_so_files(fresh_cache)) == 1
        assert not list(fresh_cache.glob("*.tmp.so"))
