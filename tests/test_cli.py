"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def csv_file(tmp_path, blob_with_mc):
    X, _ = blob_with_mc
    path = tmp_path / "data.csv"
    np.savetxt(path, X, delimiter=",")
    return path


@pytest.fixture()
def names_file(tmp_path):
    names = ["SMITH", "SMYTH", "SMITT", "SMITHE"] * 20 + ["XQWZKJY", "XQWZKJX"]
    path = tmp_path / "names.txt"
    path.write_text("\n".join(names) + "\n")
    return path


class TestDetect:
    def test_csv_detection(self, csv_file, capsys):
        assert main(["detect", str(csv_file)]) == 0
        out = capsys.readouterr().out
        assert "microclusters=" in out
        assert "rank" in out

    def test_string_detection(self, names_file, capsys):
        assert main(["detect", str(names_file), "--metric", "levenshtein"]) == 0
        out = capsys.readouterr().out
        assert "microclusters=" in out

    def test_hyperparameters_forwarded(self, csv_file, capsys):
        assert main(["detect", str(csv_file), "--n-radii", "10", "--top", "3"]) == 0
        out = capsys.readouterr().out
        # --top 3 limits the ranking rows (header + <= 3 rows after the blank).
        ranking = out.split("members")[1].strip().splitlines()
        assert len(ranking) <= 3

    def test_bad_numeric_file(self, names_file):
        with pytest.raises(SystemExit, match="could not parse"):
            main(["detect", str(names_file)])

    def test_empty_string_file(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("\n")
        with pytest.raises(SystemExit, match="no strings"):
            main(["detect", str(empty), "--metric", "levenshtein"])


class TestDatasets:
    def test_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "http" in out and "last_names" in out and "uniform" in out


class TestDemo:
    def test_demo_with_labels(self, capsys):
        assert main(["demo", "wine", "--scale", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "AUROC" in out

    def test_demo_without_labels(self, capsys):
        assert main(["demo", "uniform", "--scale", "0.0001"]) == 0
        out = capsys.readouterr().out
        assert "McCatchResult" in out


class TestReport:
    def test_writes_html(self, csv_file, tmp_path, capsys):
        out = tmp_path / "r.html"
        assert main(["report", str(csv_file), "-o", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert text.count("<svg") == 3  # oracle + histogram + scatter
        assert "HTML report" in capsys.readouterr().out

    def test_string_report_has_no_scatter(self, names_file, tmp_path):
        out = tmp_path / "r.html"
        assert main(["report", str(names_file), "--metric", "levenshtein",
                     "-o", str(out)]) == 0
        assert out.read_text().count("<svg") == 2

    def test_json_and_markdown_sidecar(self, csv_file, tmp_path, capsys):
        out = tmp_path / "r.html"
        js = tmp_path / "r.json"
        md = tmp_path / "r.md"
        assert main(["report", str(csv_file), "-o", str(out),
                     "--save-json", str(js), "--save-markdown", str(md)]) == 0
        from repro.io import load_result_json

        reloaded = load_result_json(js)
        assert reloaded.n > 0
        assert md.read_text().startswith("# McCatch result")

    def test_custom_title(self, csv_file, tmp_path):
        out = tmp_path / "r.html"
        assert main(["report", str(csv_file), "-o", str(out),
                     "--title", "Fraud sweep"]) == 0
        assert "Fraud sweep" in out.read_text()


class TestDetectJson:
    def test_save_json_archives_result(self, csv_file, tmp_path, capsys):
        js = tmp_path / "out.json"
        assert main(["detect", str(csv_file), "--save-json", str(js)]) == 0
        from repro.io import load_result_json

        assert load_result_json(js).n > 0
        assert "archived" in capsys.readouterr().out

    def test_index_kind_forwarded(self, csv_file, capsys):
        assert main(["detect", str(csv_file), "--index", "vptree"]) == 0
        assert "microclusters=" in capsys.readouterr().out


class TestStream:
    def test_replay_with_refits(self, csv_file, capsys):
        assert main(["stream", str(csv_file), "--batch", "100"]) == 0
        out = capsys.readouterr().out
        assert "[refit]" in out
        assert "outlying at final refit" in out

    def test_sliding_window(self, csv_file, capsys):
        assert main(["stream", str(csv_file), "--batch", "100",
                     "--max-window", "200"]) == 0
        out = capsys.readouterr().out
        assert "window=200" in out

    def test_invalid_batch(self, csv_file):
        with pytest.raises(SystemExit, match="--batch"):
            main(["stream", str(csv_file), "--batch", "0"])


class TestFitScore:
    def test_fit_saves_model(self, csv_file, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        assert main(["fit", str(csv_file), "-o", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "model saved to" in out
        assert model_path.exists()

    def test_score_against_saved_model(self, csv_file, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        assert main(["fit", str(csv_file), "-o", str(model_path)]) == 0
        capsys.readouterr()
        held = tmp_path / "held.csv"
        np.savetxt(held, np.vstack([np.zeros((5, 2)), [[99.0, 99.0]]]), delimiter=",")
        assert main(["score", str(model_path), str(held), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "scored rows=6" in out
        assert "flagged=1" in out  # the far [99, 99] row
        assert "yes" in out

    def test_scores_match_in_process_model(self, csv_file, blob_with_mc, tmp_path, capsys):
        from repro import McCatch, McCatchModel

        model_path = tmp_path / "model.npz"
        assert main(["fit", str(csv_file), "-o", str(model_path)]) == 0
        X, _ = blob_with_mc
        direct = McCatch(index="vptree").fit_model(X)
        loaded = McCatchModel.load(model_path)
        held = np.vstack([X[:10], [[50.0, -50.0]]])
        assert np.array_equal(
            loaded.score_batch(held).scores, direct.score_batch(held).scores
        )

    def test_fit_rejects_non_flat_index(self, csv_file, tmp_path):
        with pytest.raises(SystemExit, match="FlatTree"):
            main(["fit", str(csv_file), "--index", "ckdtree",
                  "-o", str(tmp_path / "m.npz")])
