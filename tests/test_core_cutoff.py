"""Tests for repro.core.cutoff: Definitions 4-6 and the outlier masks."""

import math

import numpy as np
import pytest

from repro.core.cutoff import (
    compute_cutoff,
    histogram_of_1nn_distances,
    outlier_mask,
    x_outlier_mask,
    y_outlier_mask,
)
from repro.core.radii import radius_ladder
from repro.core.result import OraclePlot

RADII = radius_ladder(128.0, 8)


def make_oracle(first_end, middle_end=None, n=None):
    first_end = np.asarray(first_end, dtype=np.intp)
    n = n or first_end.size
    if middle_end is None:
        middle_end = np.full(n, -1, dtype=np.intp)
    return OraclePlot(
        x=np.zeros(n),
        y=np.zeros(n),
        first_end_index=first_end,
        middle_end_index=np.asarray(middle_end, dtype=np.intp),
        radii=RADII,
        counts=np.zeros((n, RADII.size), dtype=np.int64),
    )


class TestHistogram:
    def test_counts_by_bin(self):
        hist = histogram_of_1nn_distances(np.array([0, 0, 1, 3, 3, 3]), 8)
        assert list(hist) == [2, 1, 0, 3, 0, 0, 0, 0]

    def test_ignores_missing_first_plateaus(self):
        hist = histogram_of_1nn_distances(np.array([-1, -1, 2]), 8)
        assert hist.sum() == 1


class TestComputeCutoff:
    def test_clean_bimodal_histogram(self):
        # 100 points at bin 1, 3 outliers at bin 5.
        first_end = np.array([1] * 100 + [5] * 3)
        info = compute_cutoff(first_end, RADII)
        assert info.peak_index == 1
        assert 2 <= info.index <= 5
        assert info.value == pytest.approx(RADII[info.index])

    def test_empty_histogram_gives_inf(self):
        info = compute_cutoff(np.array([-1, -1, -1]), RADII)
        assert math.isinf(info.value) and info.index == -1

    def test_peak_at_last_bin_gives_inf(self):
        info = compute_cutoff(np.array([7, 7, 7]), RADII)
        assert math.isinf(info.value)

    def test_cut_is_after_peak(self):
        first_end = np.array([2] * 50 + [3] * 10 + [6] * 2)
        info = compute_cutoff(first_end, RADII)
        assert info.index > info.peak_index

    def test_single_cluster_histogram_cuts_after_peak(self):
        # All mass in one bin, nothing after: d lands right after the
        # peak, so any Group-1NN rung beyond the mode stays detectable
        # (duplicate-heavy metric data relies on this).
        first_end = np.array([2] * 30)
        info = compute_cutoff(first_end, RADII)
        assert info.index == 3
        assert info.value == pytest.approx(RADII[3])

    def test_trailing_zero_bins_do_not_attract_the_cut(self):
        # Regression: an all-zero right partition compresses to ~0 bits;
        # without restricting the search to the histogram support, a
        # tall outlier bulge (annthyroid-style) pushes the cut past the
        # last real bin and nothing is ever flagged.
        from repro.core.radii import radius_ladder

        wide = radius_ladder(2.0**14, 15)
        first_end = np.array([7] * 1395 + [8] * 400 + [9] * 7 + [10] * 31 + [11] * 75)
        info = compute_cutoff(first_end, wide)
        assert info.index <= 11

    def test_mode_in_last_support_bin_with_room(self):
        first_end = np.array([5] * 50 + [6] * 3)
        info = compute_cutoff(first_end, RADII)
        assert info.index == 6


class TestOutlierMasks:
    def test_x_mask_by_rung(self):
        oracle = make_oracle([1, 4, 5, -1])
        info = compute_cutoff(np.array([1] * 50 + [5]), RADII)
        m = x_outlier_mask(oracle, info)
        assert m[0] == (1 >= info.index)
        assert m[1] == (4 >= info.index)
        assert not m[3]  # no first plateau -> never an X outlier

    def test_y_mask_by_rung(self):
        oracle = make_oracle([1, 1, 1], middle_end=[-1, 6, 2])
        info = compute_cutoff(np.array([1] * 50 + [5]), RADII)
        m = y_outlier_mask(oracle, info)
        assert not m[0]
        assert m[1] == (6 >= info.index)

    def test_union(self):
        oracle = make_oracle([6, 1, 1], middle_end=[-1, 6, -1])
        info = compute_cutoff(np.array([1] * 50 + [6]), RADII)
        m = outlier_mask(oracle, info)
        assert m[0] and m[1] and not m[2]

    def test_inf_cutoff_means_no_outliers(self):
        oracle = make_oracle([-1, -1], middle_end=[5, 6])
        info = compute_cutoff(np.array([-1, -1]), RADII)
        assert not outlier_mask(oracle, info).any()
