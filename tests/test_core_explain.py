"""Tests for repro.core.explain: prose explanations and ASCII plots."""

import numpy as np
import pytest

from repro import McCatch
from repro.core.explain import ascii_histogram, ascii_oracle_plot, explain_point


@pytest.fixture(scope="module")
def result(blob_with_mc):
    X, _ = blob_with_mc
    return McCatch().fit(X)


class TestExplainPoint:
    def test_inlier_explanation(self, result):
        inlier = int(np.setdiff1d(np.arange(result.n), result.outlier_indices)[0])
        text = explain_point(result, inlier)
        assert "verdict: inlier" in text
        assert "neighbor counts" in text

    def test_outlier_explanation(self, result):
        outlier = int(result.outlier_indices[0])
        text = explain_point(result, outlier)
        assert "verdict:" in text and "inlier (both" not in text
        assert "score" in text

    def test_microcluster_member_explanation(self, result):
        mc = next(m for m in result.microclusters if not m.is_singleton)
        text = explain_point(result, int(mc.indices[0]))
        assert f"{mc.cardinality}-elements microcluster" in text

    def test_out_of_range(self, result):
        with pytest.raises(IndexError):
            explain_point(result, result.n + 5)


class TestAsciiRenderings:
    def test_oracle_plot_renders(self, result):
        text = ascii_oracle_plot(result)
        assert "1NN Distance" in text
        assert "#" in text  # the planted mc appears
        assert "o" in text  # singletons appear

    def test_histogram_renders(self, result):
        text = ascii_histogram(result)
        assert "peak" in text and "cutoff d" in text
        # One line per radius bin plus the title.
        assert len(text.splitlines()) == result.oracle.radii.size + 1

    def test_dimensions_respected(self, result):
        text = ascii_oracle_plot(result, width=30, height=10)
        body = text.splitlines()[1:-1]
        assert len(body) == 10
        assert all(len(line) == 30 for line in body)
