"""explain_microcluster and compare_results (explainability extensions)."""

import numpy as np
import pytest

from repro import McCatch
from repro.core.explain import compare_results, explain_microcluster


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = np.vstack([
        rng.normal(0, 1, (400, 2)),
        rng.normal([9.0, 9.0], 0.03, (5, 2)),   # planted 5-point mc
        [[15.0, -8.0]],                          # planted singleton
    ])
    return X, McCatch().fit(X)


class TestExplainMicrocluster:
    def test_mentions_members_and_score(self, fitted):
        _, result = fitted
        text = explain_microcluster(result, 0)
        mc = result.microclusters[0]
        assert f"|M| = {mc.cardinality}" in text
        assert f"{mc.score:.2f} bits per member" in text

    def test_singleton_marked(self, fitted):
        _, result = fitted
        singleton_rank = next(
            r for r, m in enumerate(result.microclusters) if m.is_singleton
        )
        assert "one-off outlier" in explain_microcluster(result, singleton_rank)

    def test_nonsingleton_mentions_coalition(self, fitted):
        _, result = fitted
        ns_rank = next(
            r for r, m in enumerate(result.microclusters) if not m.is_singleton
        )
        text = explain_microcluster(result, ns_rank)
        assert "coalition" in text

    def test_bridge_in_r1_units(self, fitted):
        _, result = fitted
        text = explain_microcluster(result, 0)
        assert "units of r1" in text

    def test_out_of_range(self, fitted):
        _, result = fitted
        with pytest.raises(IndexError, match="out of range"):
            explain_microcluster(result, len(result.microclusters))


class TestCompareResults:
    def test_self_comparison_is_perfect(self, fitted):
        _, result = fitted
        text = compare_results(result, result)
        assert "agreement (Jaccard) = 1.000" in text
        assert "flagged only" not in text

    def test_different_settings_reported(self, fitted):
        X, result = fitted
        other = McCatch(n_radii=10).fit(X)
        text = compare_results(result, other)
        assert "comparing two results" in text
        assert "cutoff d:" in text

    def test_mismatched_n_rejected(self, fitted):
        X, result = fitted
        other = McCatch().fit(X[:200])
        with pytest.raises(ValueError, match="different datasets"):
            compare_results(result, other)

    def test_disagreements_listed(self, fitted):
        """Force a disagreement by comparing against a much coarser run."""
        X, result = fitted
        other = McCatch(n_radii=5).fit(X)
        text = compare_results(result, other)
        set_a = set(map(int, result.outlier_indices))
        set_b = set(map(int, other.outlier_indices))
        if set_a != set_b:
            assert "flagged only by" in text
        else:
            assert "agreement (Jaccard) = 1.000" in text
