"""Tests for repro.core.gel (Alg. 3) and repro.core.scoring (Alg. 4/Def. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cutoff import compute_cutoff, outlier_mask
from repro.core.gel import connected_components, spot_microclusters
from repro.core.mccatch import McCatch
from repro.core.oracle import build_oracle_plot
from repro.core.radii import define_radii
from repro.core.scoring import (
    microcluster_score,
    nearest_inlier_distances,
    point_score,
    score_microclusters,
)
from repro.index import build_index
from repro.metric.base import MetricSpace


class TestConnectedComponents:
    def test_simple_chain(self):
        ids = np.array([10, 20, 30, 40])
        comps = connected_components(ids, [(10, 20), (20, 30)])
        comps = sorted(comps, key=len)
        assert [list(c) for c in comps] == [[40], [10, 20, 30]]

    def test_no_edges_all_singletons(self):
        comps = connected_components(np.array([1, 2, 3]), [])
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_cycle(self):
        comps = connected_components(np.array([0, 1, 2]), [(0, 1), (1, 2), (2, 0)])
        assert len(comps) == 1 and list(comps[0]) == [0, 1, 2]

    @given(
        n=st.integers(2, 30),
        edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=50),
    )
    @settings(max_examples=50)
    def test_partition_property(self, n, edges):
        ids = np.arange(n)
        edges = [(a % n, b % n) for a, b in edges]
        comps = connected_components(ids, edges)
        all_members = sorted(int(i) for c in comps for i in c)
        assert all_members == list(range(n))  # partition: no loss, no dup


class TestGel:
    def _pipeline(self, X):
        space = MetricSpace(X)
        tree = build_index(space)
        radii = define_radii(tree, 15)
        c = max(1, int(np.ceil(0.1 * len(space))))
        oracle = build_oracle_plot(tree, radii, max_slope=0.1, max_cardinality=c)
        cutoff = compute_cutoff(oracle.first_end_index, radii)
        outliers = np.nonzero(outlier_mask(oracle, cutoff))[0]
        return space, oracle, cutoff, outliers

    def test_planted_mc_gels_into_one_cluster(self, blob_with_mc):
        X, labels = blob_with_mc
        space, oracle, cutoff, outliers = self._pipeline(X)
        clusters = spot_microclusters(space, oracle, cutoff, outliers)
        mc_members = set(np.nonzero(labels == 1)[0])
        covering = [c for c in clusters if mc_members.issubset(set(map(int, c)))]
        assert len(covering) == 1

    def test_singletons_stay_single(self, blob_with_mc):
        X, labels = blob_with_mc
        space, oracle, cutoff, outliers = self._pipeline(X)
        clusters = spot_microclusters(space, oracle, cutoff, outliers)
        for s in np.nonzero(labels == 2)[0]:
            containing = [c for c in clusters if int(s) in set(map(int, c))]
            assert len(containing) == 1
            assert containing[0].size == 1

    def test_empty_outliers(self, blob_with_mc):
        X, _ = blob_with_mc
        space, oracle, cutoff, _ = self._pipeline(X)
        assert spot_microclusters(space, oracle, cutoff, np.array([], dtype=np.intp)) == []

    def test_clusters_partition_outliers(self, blob_with_mc):
        X, _ = blob_with_mc
        space, oracle, cutoff, outliers = self._pipeline(X)
        clusters = spot_microclusters(space, oracle, cutoff, outliers)
        flat = sorted(int(i) for c in clusters for i in c)
        assert flat == sorted(int(i) for i in outliers)


class TestDef7Score:
    def test_isolation_axiom_monotonicity(self):
        base = dict(cardinality=10, n=1000, mean_1nn=0.5, r1=0.01, transformation_cost=2.0)
        near = microcluster_score(bridge_length=1.0, **base)
        far = microcluster_score(bridge_length=10.0, **base)
        assert far > near

    def test_cardinality_axiom_monotonicity(self):
        base = dict(n=1000, bridge_length=5.0, mean_1nn=0.5, r1=0.01, transformation_cost=2.0)
        small = microcluster_score(cardinality=10, **base)
        large = microcluster_score(cardinality=100, **base)
        assert small > large

    @given(
        card=st.integers(1, 500),
        bridge=st.floats(0.0, 1e4),
        mean_1nn=st.floats(0.0, 1e3),
        t=st.floats(0.5, 100),
    )
    @settings(max_examples=100)
    def test_score_positive_and_finite(self, card, bridge, mean_1nn, t):
        s = microcluster_score(card, 10_000, bridge, mean_1nn, r1=0.01, transformation_cost=t)
        assert np.isfinite(s) and s > 0

    @given(card=st.integers(1, 200), extra=st.floats(0.1, 100.0))
    @settings(max_examples=60)
    def test_isolation_axiom_property(self, card, extra):
        base = dict(cardinality=card, n=5000, mean_1nn=0.3, r1=0.005, transformation_cost=3.0)
        s_near = microcluster_score(bridge_length=1.0, **base)
        s_far = microcluster_score(bridge_length=1.0 + extra, **base)
        assert s_far >= s_near

    @given(card=st.integers(1, 200), more=st.integers(1, 200))
    @settings(max_examples=60)
    def test_cardinality_axiom_property(self, card, more):
        base = dict(n=5000, bridge_length=4.0, mean_1nn=0.3, r1=0.005, transformation_cost=3.0)
        s_small = microcluster_score(cardinality=card, **base)
        s_large = microcluster_score(cardinality=card + more, **base)
        assert s_small >= s_large

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            microcluster_score(0, 10, 1.0, 1.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            microcluster_score(5, 10, 1.0, 1.0, 0.0, 1.0)

    def test_point_score_monotone_in_g(self):
        assert point_score(10.0, 0.1) > point_score(1.0, 0.1) > point_score(0.0, 0.1)


class TestScoreMicroclusters:
    def test_full_scoring(self, blob_with_mc):
        X, labels = blob_with_mc
        result = McCatch().fit(X)
        # Singletons (far away) must outrank the 8-point mc and inliers.
        assert result.microclusters[0].is_singleton
        mc_scores = {m.cardinality: m.score for m in result.microclusters}
        assert max(mc_scores) >= 8  # the planted mc was found

    def test_point_scores_rank_outliers_above_inliers(self, blob_with_mc):
        X, labels = blob_with_mc
        result = McCatch().fit(X)
        outlier_scores = result.point_scores[labels > 0]
        inlier_scores = result.point_scores[labels == 0]
        assert outlier_scores.min() > np.percentile(inlier_scores, 95)

    def test_nearest_inlier_distances_inliers_use_x(self, blob_with_mc):
        X, _ = blob_with_mc
        space = MetricSpace(X)
        tree = build_index(space)
        radii = define_radii(tree, 15)
        oracle = build_oracle_plot(tree, radii, max_slope=0.1, max_cardinality=51)
        g = nearest_inlier_distances(space, np.array([], dtype=np.intp), oracle)
        assert np.array_equal(g, oracle.x)

    def test_bridge_lengths_quantized_to_rungs(self, blob_with_mc):
        X, labels = blob_with_mc
        result = McCatch().fit(X)
        rungs = set(np.round(result.oracle.radii, 9)) | {0.0}
        for mc in result.microclusters:
            assert round(mc.bridge_length, 9) in rungs

    def test_all_points_outliers_edge_case(self):
        # Two far-apart tight pairs: everything can be outlying.
        X = np.array([[0, 0], [0.01, 0], [100, 100], [100.01, 100]])
        result = McCatch(n_radii=8).fit(X)
        assert np.isfinite(result.point_scores).all()
