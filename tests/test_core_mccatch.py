"""End-to-end tests for the McCatch driver (Alg. 1) and result objects."""

import numpy as np
import pytest

from repro import McCatch, MetricSpace, detect_microclusters
from repro.metric.strings import levenshtein


class TestHyperparameterValidation:
    def test_defaults_are_papers(self):
        det = McCatch()
        assert det.n_radii == 15
        assert det.max_slope == 0.1
        assert det.max_cardinality_fraction == 0.1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_radii=1),
            dict(max_slope=-0.1),
            dict(max_cardinality_fraction=0.0),
            dict(max_cardinality_fraction=1.5),
            dict(max_cardinality=0),
            dict(transformation_cost=-1.0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        det_kwargs = dict(kwargs)
        tcost = det_kwargs.pop("transformation_cost", None)
        if tcost is not None:
            det = McCatch(transformation_cost=tcost)
            with pytest.raises(ValueError):
                det.fit(np.random.default_rng(0).normal(size=(30, 2)))
        else:
            with pytest.raises((ValueError, TypeError)):
                McCatch(**det_kwargs)

    def test_absolute_c_overrides_fraction(self):
        det = McCatch(max_cardinality=7)
        assert det._resolve_c(1000) == 7

    def test_fraction_c(self):
        assert McCatch()._resolve_c(1000) == 100
        assert McCatch()._resolve_c(5) == 1


class TestFitOnVectors:
    def test_detects_planted_structure(self, blob_with_mc):
        X, labels = blob_with_mc
        result = McCatch().fit(X)
        detected = set(map(int, result.outlier_indices))
        planted = set(np.nonzero(labels > 0)[0])
        assert planted.issubset(detected)

    def test_deterministic(self, blob_with_mc):
        X, _ = blob_with_mc
        r1 = McCatch().fit(X)
        r2 = McCatch().fit(X)
        assert np.array_equal(r1.point_scores, r2.point_scores)
        assert [tuple(m.indices) for m in r1.microclusters] == [
            tuple(m.indices) for m in r2.microclusters
        ]

    def test_ranking_most_strange_first(self, blob_with_mc):
        X, _ = blob_with_mc
        result = McCatch().fit(X)
        scores = [m.score for m in result.microclusters]
        assert scores == sorted(scores, reverse=True)

    def test_microclusters_disjoint(self, blob_with_mc):
        X, _ = blob_with_mc
        result = McCatch().fit(X)
        seen = set()
        for mc in result.microclusters:
            members = set(map(int, mc.indices))
            assert not members & seen
            seen |= members

    def test_labels_property(self, blob_with_mc):
        X, labels = blob_with_mc
        result = McCatch().fit(X)
        out_labels = result.labels
        assert out_labels.shape == (X.shape[0],)
        assert (out_labels[result.outlier_indices] >= 0).all()
        inlier_positions = np.setdiff1d(np.arange(X.shape[0]), result.outlier_indices)
        assert (out_labels[inlier_positions] == -1).all()

    def test_fit_scores_shortcut(self, blob_with_mc):
        X, _ = blob_with_mc
        assert np.array_equal(McCatch().fit_scores(X), McCatch().fit(X).point_scores)

    def test_detect_microclusters_helper(self, blob_with_mc):
        X, _ = blob_with_mc
        result = detect_microclusters(X, n_radii=10)
        assert result.oracle.radii.size == 10

    @pytest.mark.parametrize("kind", ["brute", "vptree", "kdtree", "ckdtree", "mtree", "rtree"])
    def test_index_kinds_find_planted_outliers(self, blob_with_mc, kind):
        # Radii ladders may differ across kinds (diameter estimates vary),
        # but every index must surface the planted structure.
        X, labels = blob_with_mc
        got = McCatch(index=kind).fit(X)
        planted = set(np.nonzero(labels > 0)[0])
        assert planted <= set(map(int, got.outlier_indices))

    def test_uniform_data_few_outliers(self):
        X = np.random.default_rng(5).uniform(size=(800, 2))
        result = McCatch().fit(X)
        assert result.n_outliers <= 40  # no planted structure: sparse output

    def test_accepts_metric_space(self, blob_with_mc):
        X, _ = blob_with_mc
        result = McCatch().fit(MetricSpace(X))
        assert result.n == X.shape[0]


class TestFitOnObjects:
    def test_string_data(self):
        names = ["SMITH", "SMYTH", "SMITT", "SMITHE"] * 25 + ["XQWZKJY", "XQWZKJX"]
        result = McCatch(index="vptree").fit(names, levenshtein)
        detected = set(map(int, result.outlier_indices))
        assert {100, 101} <= detected
        # The two weird names are mutual neighbors: expect one 2-elements mc.
        pair = [m for m in result.microclusters if set(map(int, m.indices)) == {100, 101}]
        assert len(pair) == 1

    def test_transformation_cost_autodetected_for_strings(self):
        det = McCatch()
        space = MetricSpace(["AB", "CD"], levenshtein)
        t = det._resolve_transformation_cost(space)
        assert t > 1.0

    def test_transformation_cost_fallback_for_unknown_objects(self):
        det = McCatch()
        space = MetricSpace([(0,), (1,)], lambda a, b: abs(a[0] - b[0]))
        assert det._resolve_transformation_cost(space) == 1.0

    def test_explicit_transformation_cost_wins(self):
        det = McCatch(transformation_cost=42.0)
        space = MetricSpace(["AB", "CD"], levenshtein)
        assert det._resolve_transformation_cost(space) == 42.0


class TestResultSurface:
    def test_summary_renders(self, blob_with_mc):
        X, _ = blob_with_mc
        text = McCatch().fit(X).summary()
        assert "McCatchResult" in text and "score" in text

    def test_nonsingleton_filter(self, blob_with_mc):
        X, _ = blob_with_mc
        result = McCatch().fit(X)
        assert all(m.cardinality >= 2 for m in result.nonsingleton())

    def test_scores_alignment(self, blob_with_mc):
        X, _ = blob_with_mc
        result = McCatch().fit(X)
        assert np.array_equal(
            result.scores, np.array([m.score for m in result.microclusters])
        )

    def test_repr_microcluster(self, blob_with_mc):
        X, _ = blob_with_mc
        result = McCatch().fit(X)
        assert "Microcluster(" in repr(result.microclusters[0])
