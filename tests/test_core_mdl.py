"""Tests for repro.core.mdl: universal code length, Def. 5 cost, splits."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mdl import (
    best_split,
    cost_of_compression,
    universal_code_length,
    universal_code_lengths,
)


class TestUniversalCodeLength:
    def test_one_is_free(self):
        assert universal_code_length(1) == 0.0

    def test_two(self):
        # log2(2) = 1; log2(1) = 0 terminates.
        assert universal_code_length(2) == pytest.approx(1.0)

    def test_known_value_16(self):
        # log2(16)=4, log2(4)=2, log2(2)=1, log2(1)=0 -> 7.
        assert universal_code_length(16) == pytest.approx(7.0)

    def test_below_one_clamped(self):
        assert universal_code_length(0) == 0.0
        assert universal_code_length(0.3) == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            universal_code_length(float("nan"))

    @given(z=st.integers(1, 10**9))
    @settings(max_examples=100)
    def test_nonnegative_and_superlogarithmic(self, z):
        v = universal_code_length(z)
        assert v >= 0.0
        if z > 1:
            assert v >= math.log2(z)

    @given(z=st.integers(1, 10**6))
    @settings(max_examples=100)
    def test_monotone(self, z):
        assert universal_code_length(z + 1) >= universal_code_length(z)

    def test_vectorized_matches_scalar(self):
        values = [1, 2, 5, 100, 1000]
        vec = universal_code_lengths(values)
        assert np.allclose(vec, [universal_code_length(v) for v in values])


class TestCostOfCompression:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cost_of_compression([])

    def test_uniform_set_cheap(self):
        homogeneous = cost_of_compression([5, 5, 5, 5])
        heterogeneous = cost_of_compression([1, 9, 2, 8])
        assert homogeneous < heterogeneous

    def test_single_value(self):
        # <1> + <1 + ceil(v)> + <1 + 0>
        v = cost_of_compression([4])
        assert v == pytest.approx(universal_code_length(1 + 4))

    @given(values=st.lists(st.integers(0, 1000), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_nonnegative(self, values):
        assert cost_of_compression(values) >= 0.0

    @given(values=st.lists(st.integers(0, 100), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_shift_invariance_of_deviation_term_direction(self, values):
        # Adding a constant cannot decrease cost below the deviation part:
        # it only changes the average term.  Sanity: cost stays finite.
        assert math.isfinite(cost_of_compression(values))


class TestBestSplit:
    def test_obvious_two_cluster_split(self):
        values = [100, 100, 100, 0, 0, 0]
        cut, _ = best_split(values)
        assert cut == 3

    def test_respects_start(self):
        values = [5, 100, 100, 0, 0]
        cut, _ = best_split(values, start=1)
        assert cut == 3

    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            best_split([1], start=0)
        with pytest.raises(ValueError):
            best_split([1, 2, 3], start=2)

    @given(values=st.lists(st.integers(0, 50), min_size=2, max_size=15))
    @settings(max_examples=60)
    def test_cut_in_valid_range(self, values):
        cut, cost = best_split(values)
        assert 1 <= cut <= len(values) - 1
        assert math.isfinite(cost)

    @given(values=st.lists(st.integers(0, 50), min_size=2, max_size=12))
    @settings(max_examples=60)
    def test_returned_cost_is_minimal(self, values):
        cut, cost = best_split(values)
        arr = np.asarray(values, dtype=float)
        for e in range(1, len(values)):
            alt = cost_of_compression(arr[:e]) + cost_of_compression(arr[e:])
            assert cost <= alt + 1e-9
