"""Tests for repro.core.oracle: Algorithm 2 end to end."""

import numpy as np
import pytest

from repro.core.oracle import build_oracle_plot
from repro.core.radii import define_radii
from repro.index import UNKNOWN_COUNT, build_index
from repro.metric.base import MetricSpace


@pytest.fixture(scope="module")
def setup(blob_with_mc):
    X, labels = blob_with_mc
    space = MetricSpace(X)
    tree = build_index(space)
    radii = define_radii(tree, 15)
    return space, tree, radii, labels


class TestBuildOraclePlot:
    def test_shapes(self, setup):
        space, tree, radii, _ = setup
        o = build_oracle_plot(tree, radii, max_slope=0.1, max_cardinality=51)
        n = len(space)
        assert o.x.shape == o.y.shape == (n,)
        assert o.first_end_index.shape == o.middle_end_index.shape == (n,)
        assert o.counts.shape == (n, 15)
        assert len(o) == n

    def test_mc_members_have_large_y(self, setup):
        space, tree, radii, labels = setup
        o = build_oracle_plot(tree, radii, max_slope=0.1, max_cardinality=51)
        mc = np.nonzero(labels == 1)[0]
        inliers = np.nonzero(labels == 0)[0]
        assert o.y[mc].min() > np.percentile(o.y[inliers], 99)

    def test_singletons_have_large_x(self, setup):
        space, tree, radii, labels = setup
        o = build_oracle_plot(tree, radii, max_slope=0.1, max_cardinality=51)
        singles = np.nonzero(labels == 2)[0]
        inliers = np.nonzero(labels == 0)[0]
        assert o.x[singles].min() > o.x[inliers].max()

    def test_sparse_focused_equals_exhaustive_on_decisive_fields(self, setup):
        space, tree, radii, _ = setup
        sparse = build_oracle_plot(tree, radii, max_slope=0.1, max_cardinality=51)
        full = build_oracle_plot(
            tree, radii, max_slope=0.1, max_cardinality=51, sparse_focused=False
        )
        assert np.array_equal(sparse.x, full.x)
        assert np.array_equal(sparse.y, full.y)
        assert np.array_equal(sparse.first_end_index, full.first_end_index)
        assert np.array_equal(sparse.middle_end_index, full.middle_end_index)

    def test_sparse_focused_skips_work(self, setup):
        space, tree, radii, _ = setup
        sparse = build_oracle_plot(tree, radii, max_slope=0.1, max_cardinality=51)
        assert (sparse.counts == UNKNOWN_COUNT).any()

    def test_counts_include_self(self, setup):
        space, tree, radii, _ = setup
        o = build_oracle_plot(tree, radii, max_slope=0.1, max_cardinality=51)
        known = o.counts[:, 0] != UNKNOWN_COUNT
        assert (o.counts[known, 0] >= 1).all()
