"""Tests for repro.core.plateaus: Definitions 1-3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plateaus import analyze_counts, find_plateaus, first_plateau, middle_plateau
from repro.core.radii import radius_ladder
from repro.index.joins import UNKNOWN_COUNT

RADII = radius_ladder(128.0, 8)  # 1, 2, 4, ..., 128


def plateaus_of(counts, b=0.0, c=100):
    return find_plateaus(np.asarray(counts), RADII, max_slope=b, max_cardinality=c)


class TestFindPlateaus:
    def test_flat_then_jump(self):
        # count 1 for radii 0..3, then jumps to 50, flat to the end.
        p = plateaus_of([1, 1, 1, 1, 50, 50, 50, 50])
        assert len(p) == 2
        first, last = p
        assert (first.start, first.end, first.height) == (0, 3, 1)
        assert (last.start, last.end, last.height) == (4, 7, 50)
        assert first.length == pytest.approx(RADII[3] - RADII[0])

    def test_middle_plateau_exists(self):
        p = plateaus_of([1, 1, 8, 8, 8, 90, 90, 90])
        heights = [q.height for q in p]
        assert heights == [1, 8, 90]

    def test_slope_tolerance_merges_quasi_flat(self):
        # 10 -> 11 across one radius doubling: slope ~0.138.
        strict = plateaus_of([1, 10, 11, 11, 90, 90, 90, 90], b=0.0)
        loose = plateaus_of([1, 10, 11, 11, 90, 90, 90, 90], b=0.15)
        strict_heights = [q.height for q in strict]
        loose_heights = [q.height for q in loose]
        assert 10 in loose_heights  # merged plateau starts at count 10
        assert 10 not in strict_heights or 11 in strict_heights

    def test_excused_plateaus_dropped(self):
        p = plateaus_of([1, 1, 50, 50, 50, 50, 50, 50], c=10)
        assert [q.height for q in p] == [1]

    def test_unknown_counts_break_plateaus(self):
        counts = np.array([1, 1, 30, UNKNOWN_COUNT, UNKNOWN_COUNT, UNKNOWN_COUNT,
                           UNKNOWN_COUNT, UNKNOWN_COUNT])
        p = plateaus_of(counts, c=100)
        assert [q.height for q in p] == [1]

    def test_no_plateaus_when_steadily_growing(self):
        p = plateaus_of([1, 2, 4, 8, 16, 32, 64, 128])
        assert p == []

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            find_plateaus(np.array([1, 2]), RADII, max_slope=0.1, max_cardinality=5)

    @given(
        counts=st.lists(st.integers(1, 100), min_size=8, max_size=8).map(sorted),
        b=st.floats(0.0, 0.5),
    )
    @settings(max_examples=80)
    def test_plateaus_are_disjoint_and_ordered(self, counts, b):
        p = find_plateaus(np.array(counts), RADII, max_slope=b, max_cardinality=1000)
        for q in p:
            assert q.start < q.end
            assert q.length > 0
        # Maximality: consecutive plateaus cannot touch.
        for q1, q2 in zip(p, p[1:]):
            assert q2.start > q1.end


class TestFirstAndMiddle:
    def test_first_is_height_one(self):
        p = plateaus_of([1, 1, 8, 8, 8, 90, 90, 90])
        fp = first_plateau(p)
        assert fp is not None and fp.height == 1

    def test_no_first_when_starting_crowded(self):
        p = plateaus_of([5, 5, 5, 90, 90, 90, 90, 90])
        assert first_plateau(p) is None

    def test_middle_excludes_last_radius(self):
        # The 8-plateau reaching the final radius is a "last" plateau.
        p = plateaus_of([1, 1, 8, 8, 8, 8, 8, 8])
        assert middle_plateau(p, len(RADII)) is None

    def test_middle_picks_longest(self):
        p = plateaus_of([1, 3, 3, 10, 10, 10, 90, 90])
        mp = middle_plateau(p, len(RADII))
        assert mp is not None and mp.height == 10  # 2-rung span beats 1-rung

    def test_middle_tie_broken_to_larger_end(self):
        p = plateaus_of([2, 2, 5, 90, 90, 5, 5, 90])  # artificial; nondecreasing not required here
        # find_plateaus works on any counts row; verify tie-break logic via lengths
        mp = middle_plateau(p, len(RADII))
        if mp is not None:
            others = [q for q in p if q.height > 1 and q.end != len(RADII) - 1]
            assert all((mp.length, mp.end) >= (q.length, q.end) for q in others)


class TestAnalyzeCounts:
    def test_vectorized_outputs(self):
        counts = np.array(
            [
                [1, 1, 1, 1, 90, 90, 90, 90],   # clean singleton-ish point
                [1, 1, 8, 8, 8, 90, 90, 90],    # mc point
                [5, 5, 90, 90, 90, 90, 90, 90],  # crowded point: no first plateau
            ]
        )
        x, y, first_end, middle_end = analyze_counts(
            counts, RADII, max_slope=0.0, max_cardinality=100
        )
        assert x[0] > 0 and first_end[0] == 3
        assert y[0] == 0 and middle_end[0] == -1
        assert x[1] > 0 and y[1] > 0 and middle_end[1] == 4
        assert x[2] == 0 and first_end[2] == -1

    def test_x_zero_for_duplicates(self):
        counts = np.array([[3, 3, 3, 3, 3, 3, 3, 90]])
        x, y, first_end, middle_end = analyze_counts(
            counts, RADII, max_slope=0.0, max_cardinality=100
        )
        assert x[0] == 0.0 and first_end[0] == -1
        assert y[0] > 0.0  # the height-3 plateau is a middle plateau
