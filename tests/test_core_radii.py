"""Tests for repro.core.radii: the geometric radius ladder."""

import numpy as np
import pytest

from repro.core.radii import define_radii, radius_ladder
from repro.index import build_index
from repro.metric.base import MetricSpace


class TestRadiusLadder:
    def test_default_shape(self):
        r = radius_ladder(100.0, 15)
        assert r.shape == (15,)
        assert r[-1] == pytest.approx(100.0)
        assert r[0] == pytest.approx(100.0 / 2**14)

    def test_geometric_ratio_two(self):
        r = radius_ladder(64.0, 7)
        assert np.allclose(r[1:] / r[:-1], 2.0)

    def test_strictly_increasing(self):
        r = radius_ladder(5.0, 10)
        assert (np.diff(r) > 0).all()

    def test_rejects_single_radius(self):
        with pytest.raises(ValueError, match=">= 2"):
            radius_ladder(1.0, 1)

    def test_rejects_nonpositive_diameter(self):
        with pytest.raises(ValueError, match="positive"):
            radius_ladder(0.0, 5)


class TestDefineRadii:
    def test_from_index(self, small_points):
        idx = build_index(MetricSpace(small_points))
        r = define_radii(idx, 15)
        assert r.size == 15
        assert r[-1] == pytest.approx(idx.diameter_estimate())

    def test_coincident_points_rejected(self):
        space = MetricSpace(np.zeros((5, 2)))
        idx = build_index(space)
        with pytest.raises(ValueError, match="coincide"):
            define_radii(idx, 15)
