"""Tests for repro.datasets: generators, stand-ins, registry."""

import numpy as np
import pytest

from repro.datasets import (
    AXIOM_NAMES,
    BENCHMARK_SPECS,
    dataset_names,
    diagonal_line,
    gaussian_blobs,
    load,
    make_axiom_dataset,
    make_benchmark_like,
    make_fingerprints,
    make_http_like,
    make_last_names,
    make_shanghai_tiles,
    make_skeletons,
    make_volcano_tiles,
    plant_microcluster,
    plant_singletons,
    uniform_cube,
)
from repro.metric.strings import levenshtein
from repro.metric.trees import LabeledTree, tree_edit_distance


class TestSynthetic:
    def test_uniform_cube_bounds(self):
        X = uniform_cube(200, 3, random_state=0)
        assert X.shape == (200, 3)
        assert (X >= 0).all() and (X <= 1).all()

    def test_diagonal_on_line(self):
        X = diagonal_line(100, 5, random_state=0)
        assert np.allclose(X - X[:, :1], 0.0)

    def test_diagonal_jitter(self):
        X = diagonal_line(100, 5, jitter=0.01, random_state=0)
        assert not np.allclose(X - X[:, :1], 0.0)

    def test_gaussian_blobs_shape(self):
        X = gaussian_blobs(150, 4, n_blobs=2, random_state=0)
        assert X.shape == (150, 4)

    def test_plant_microcluster_bridge(self):
        rng = np.random.default_rng(0)
        inliers = rng.normal(size=(300, 2))
        clump = plant_microcluster(inliers, 10, bridge_length=5.0,
                                   tightness=0.01, random_state=0)
        d = np.linalg.norm(inliers[:, None, :] - clump[None, :, :], axis=2)
        assert d.min() == pytest.approx(5.0, rel=0.15)

    def test_plant_singletons_far(self):
        rng = np.random.default_rng(0)
        inliers = rng.normal(size=(300, 2))
        singles = plant_singletons(inliers, 3, distance=6.0, random_state=0)
        d = np.linalg.norm(inliers[:, None, :] - singles[None, :, :], axis=2)
        assert (d.min(axis=0) > 3.0).all()


class TestAxiomDatasets:
    @pytest.mark.parametrize("shape", ["gaussian", "cross", "arc"])
    @pytest.mark.parametrize("axiom", ["isolation", "cardinality"])
    def test_structure(self, shape, axiom):
        ds = make_axiom_dataset(shape, axiom, n_inliers=500, random_state=0)
        assert ds.X.shape[1] == 2
        assert set(np.unique(ds.labels)) == {0, 1, 2}
        if axiom == "isolation":
            assert ds.red_indices.size == ds.green_indices.size == 10
        else:
            assert ds.red_indices.size == 100
            assert ds.green_indices.size == 10

    def test_isolation_green_farther(self):
        ds = make_axiom_dataset("cross", "isolation", n_inliers=800, random_state=1)
        inl = ds.X[ds.labels == 0]

        def bridge(pts):
            return np.linalg.norm(inl[:, None] - pts[None], axis=2).min()

        assert bridge(ds.X[ds.green_indices]) > 2.0 * bridge(ds.X[ds.red_indices])

    def test_cardinality_equal_bridges(self):
        ds = make_axiom_dataset("arc", "cardinality", n_inliers=800, random_state=1)
        inl = ds.X[ds.labels == 0]

        def bridge(pts):
            return np.linalg.norm(inl[:, None] - pts[None], axis=2).min()

        assert bridge(ds.X[ds.green_indices]) == pytest.approx(
            bridge(ds.X[ds.red_indices]), rel=0.05
        )

    def test_unknown_shape_axiom(self):
        with pytest.raises(ValueError):
            make_axiom_dataset("ring", "isolation")
        with pytest.raises(ValueError):
            make_axiom_dataset("arc", "density")


class TestBenchmarkStandIns:
    @pytest.mark.parametrize("name", sorted(BENCHMARK_SPECS))
    def test_specs_respected_at_scale(self, name):
        scale = 0.2 if BENCHMARK_SPECS[name].n > 1000 else 1.0
        X, y = make_benchmark_like(name, scale=scale, random_state=0)
        spec = BENCHMARK_SPECS[name]
        assert X.shape[1] == spec.dim
        assert abs(X.shape[0] - max(30, round(spec.n * scale))) <= 1
        frac = 100.0 * y.sum() / y.size
        assert frac == pytest.approx(spec.outlier_pct, abs=max(1.0, 0.5 * spec.outlier_pct))

    def test_http_like_dos_cluster_is_tight_and_far(self):
        X, y = make_http_like(scale=0.2, random_state=0)
        n_dos = 30  # the DoS coalition keeps its cardinality at any scale
        dos = X[np.nonzero(y)[0][:n_dos]]
        spread = np.linalg.norm(dos - dos.mean(axis=0), axis=1).max()
        inl = X[y == 0]
        gap = np.linalg.norm(inl[:, None] - dos[None], axis=2).min()
        assert gap > 10 * spread

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_benchmark_like("mnist")


class TestNondimensional:
    def test_last_names_labels(self):
        names, y = make_last_names(n_inliers=100, n_outliers=10, random_state=0)
        assert len(names) == 110
        assert y.sum() == 10

    def test_last_names_outliers_are_far_in_edit_distance(self):
        names, y = make_last_names(n_inliers=50, n_outliers=5, random_state=0)
        inl = [n for n, lbl in zip(names, y) if lbl == 0]
        out = [n for n, lbl in zip(names, y) if lbl == 1]
        for o in out:
            nearest = min(levenshtein(o, i) for i in inl)
            assert nearest >= 4

    def test_too_many_outliers_rejected(self):
        with pytest.raises(ValueError):
            make_last_names(n_outliers=10_000)

    def test_skeletons_are_valid_trees(self):
        trees, y = make_skeletons(n_humans=10, n_animals=2, random_state=0)
        assert all(isinstance(t, LabeledTree) for t in trees)
        assert y.sum() == 2

    def test_skeleton_classes_separable(self):
        trees, y = make_skeletons(n_humans=6, n_animals=2, random_state=0)
        humans = [t for t, lbl in zip(trees, y) if lbl == 0]
        animals = [t for t, lbl in zip(trees, y) if lbl == 1]
        within = tree_edit_distance(humans[0], humans[1])
        across = tree_edit_distance(humans[0], animals[0])
        assert across > within

    def test_fingerprints_partial_are_short(self):
        codes, y = make_fingerprints(n_full=20, n_partial=4, random_state=0)
        full = [c for c, lbl in zip(codes, y) if lbl == 0]
        partial = [c for c, lbl in zip(codes, y) if lbl == 1]
        assert max(map(len, partial)) < min(map(len, full))


class TestImagery:
    def test_shanghai_structure(self):
        tiles = make_shanghai_tiles(random_state=0)
        assert len(tiles) == 36 * 36
        assert (tiles.rgb >= 0).all() and (tiles.rgb <= 255).all()
        assert (tiles.labels == 2).sum() == 2  # red roof pair
        assert (tiles.labels == 3).sum() == 2  # blue roof pair
        assert (tiles.labels == 1).sum() == 4  # scattered

    def test_volcano_snow_cluster(self):
        tiles = make_volcano_tiles(random_state=0)
        assert len(tiles) == 61 * 61
        snow = tiles.rgb[tiles.labels == 2]
        assert snow.shape[0] == 3
        assert snow.min() > 200  # snow is bright in all channels


class TestRegistry:
    def test_all_names_load_small(self):
        for name in dataset_names():
            ds = load(name, scale=0.02, random_state=0, n=200)
            assert ds.n >= 20

    def test_axiom_names_enumerated(self):
        assert len(AXIOM_NAMES) == 6

    def test_metric_datasets_carry_metric(self):
        ds = load("last_names", scale=0.1)
        assert not ds.is_vector and callable(ds.metric)

    def test_vector_datasets_have_labels(self):
        ds = load("mammography", scale=0.2)
        assert ds.is_vector and ds.labels is not None

    def test_synthetic_without_labels(self):
        ds = load("uniform", n=100, dim=3)
        assert ds.labels is None

    def test_unknown(self):
        with pytest.raises(KeyError):
            load("imagenet")
