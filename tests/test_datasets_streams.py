"""Stream workload generators + end-to-end streaming detection on them."""

import numpy as np
import pytest

from repro import McCatch, StreamingMcCatch
from repro.datasets import burst_stream, regime_shift_stream, trickle_stream


class TestGenerators:
    def test_regime_shift_shapes_and_labels(self):
        batches = list(regime_shift_stream(n_batches=6, batch_size=50, dim=3))
        assert len(batches) == 6
        for batch, labels in batches:
            assert batch.shape == (50, 3)
            assert not labels.any()

    def test_regime_shift_actually_shifts(self):
        batches = list(regime_shift_stream(n_batches=10, batch_size=200, offset=30.0))
        early = batches[0][0].mean(axis=0)
        late = batches[-1][0].mean(axis=0)
        assert np.linalg.norm(late - early) > 20

    def test_regime_shift_validation(self):
        with pytest.raises(ValueError, match="shift_at"):
            list(regime_shift_stream(shift_at=1.5))
        with pytest.raises(ValueError, match="n_batches"):
            list(regime_shift_stream(n_batches=0))

    def test_burst_injected_at_declared_batch(self):
        batches = list(burst_stream(n_batches=8, batch_size=60, burst_batch=3,
                                    burst_size=10))
        for b, (batch, labels) in enumerate(batches):
            if b == 3:
                assert batch.shape == (70, 2)
                assert labels.sum() == 10
            else:
                assert batch.shape == (60, 2)
                assert not labels.any()

    def test_burst_is_tight_and_far(self):
        for b, (batch, labels) in enumerate(burst_stream(burst_batch=2, burst_size=8)):
            if b == 2:
                burst = batch[labels]
                spread = np.linalg.norm(burst - burst.mean(axis=0), axis=1).max()
                distance = np.linalg.norm(burst.mean(axis=0))
                assert spread < 1.0 < distance

    def test_burst_validation(self):
        with pytest.raises(ValueError, match="burst_batch"):
            list(burst_stream(n_batches=5, burst_batch=5))
        with pytest.raises(ValueError, match="burst_size"):
            list(burst_stream(burst_size=0))

    def test_trickle_rate(self):
        total = flagged = 0
        for batch, labels in trickle_stream(n_batches=20, batch_size=200,
                                            outlier_rate=0.02, random_state=1):
            total += len(labels)
            flagged += int(labels.sum())
        assert 0.005 < flagged / total < 0.05

    def test_trickle_outliers_are_far(self):
        for batch, labels in trickle_stream(outlier_rate=0.05, outlier_offset=20.0,
                                            random_state=2):
            for i in np.nonzero(labels)[0]:
                assert np.linalg.norm(batch[i]) > 10

    def test_trickle_validation(self):
        with pytest.raises(ValueError, match="outlier_rate"):
            list(trickle_stream(outlier_rate=2.0))

    def test_deterministic_given_seed(self):
        a = [b for b, _ in burst_stream(random_state=5)]
        b = [b for b, _ in burst_stream(random_state=5)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestStreamingOnGeneratedWorkloads:
    def test_burst_raises_alerts(self):
        """The coordinated burst must be flagged when it arrives (or at
        the refit its arrival triggers)."""
        stream = StreamingMcCatch(McCatch(), min_fit_size=100, refit_factor=1.3)
        caught = 0
        for b, (batch, labels) in enumerate(
            burst_stream(n_batches=8, batch_size=100, burst_batch=5, burst_size=12,
                         random_state=3)
        ):
            update = stream.update(batch)
            if labels.any():
                expected = set(range(len(stream) - int(labels.sum()), len(stream)))
                if update.refitted:
                    flagged = set(map(int, stream.result.outlier_indices))
                else:
                    flagged = set(map(int, update.provisional_outliers))
                caught = len(expected & flagged)
        assert caught >= 10  # at least 10 of the 12 burst members

    def test_window_forgets_old_regime(self):
        """With a sliding window, the old regime's center becomes
        anomalous once the window is full of the new regime."""
        stream = StreamingMcCatch(McCatch(), min_fit_size=100, refit_factor=1.2,
                                  max_window=400)
        for batch, _ in regime_shift_stream(n_batches=10, batch_size=100,
                                            shift_at=0.4, offset=40.0, random_state=4):
            stream.update(batch)
        stream.refit()
        update = stream.update(np.array([[0.0, 0.0]]))  # old-regime location
        if update.refitted:
            flagged = set(map(int, stream.result.outlier_indices))
        else:
            flagged = set(map(int, update.provisional_outliers))
        assert (len(stream) - 1) in flagged
