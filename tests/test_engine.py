"""Differential tests for the batch query engine (repro.engine).

The engine's contract is exactness: the batched executor must produce
bit-for-bit the same results as the per-point reference executor — and
``count_within_many`` the same counts as stacked ``count_within``
calls — across every index kind, every metric-space type (vectors,
strings, trees), and the edge radii (0, exact ties at the threshold,
radius >= diameter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import McCatch
from repro.engine import BatchQueryEngine, knn_distances, nearest_distances_to
from repro.index import available_index_kinds, build_index
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein
from repro.metric.trees import LabeledTree, tree_edit_distance

ALL_KINDS = available_index_kinds()
METRIC_KINDS = [k for k in ALL_KINDS if k not in ("kdtree", "ckdtree", "rtree")]


def _tree(label, *children):
    return LabeledTree(label, children)


@pytest.fixture(scope="module")
def vector_edge_space():
    """Vector data with exact duplicates (radius-0 ties are real)."""
    rng = np.random.default_rng(7)
    X = np.vstack(
        [
            rng.normal(0, 1, (60, 3)),
            rng.normal(5, 0.5, (30, 3)),
            rng.uniform(-8, 8, (10, 3)),
        ]
    )
    X = np.vstack([X, X[:4]])  # duplicated points
    return MetricSpace(X)


@pytest.fixture(scope="module")
def tree_space():
    trees = [
        _tree("a", _tree("b"), _tree("c")),
        _tree("a", _tree("b"), _tree("d")),
        _tree("a", _tree("b", _tree("e")), _tree("c")),
        _tree("x", _tree("y"), _tree("z", _tree("w"))),
        _tree("x", _tree("y")),
        _tree("x"),
        _tree("a", _tree("c"), _tree("b")),
        _tree("q", _tree("q", _tree("q", _tree("q")))),
        _tree("a", _tree("b"), _tree("c")),  # exact duplicate of the first
        _tree("m", _tree("n"), _tree("o"), _tree("p")),
    ]
    return MetricSpace(trees, tree_edit_distance)


def _edge_radii(space):
    """Radius ladder with every edge case: 0, an exact pairwise tie,
    mid radii, the diameter itself, and beyond the diameter."""
    dm = space.distance_matrix()
    diameter = float(dm.max())
    tie = float(np.median(dm[dm > 0])) if (dm > 0).any() else 1.0
    return np.unique([0.0, tie, diameter / 16, diameter / 4, diameter, diameter * 2])


# -- count_within_many vs stacked count_within ---------------------------


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_count_within_many_matches_stacked_vectors(vector_edge_space, kind):
    space = vector_edge_space
    radii = _edge_radii(space)
    index = build_index(space, kind=kind)
    stacked = np.stack(
        [index.count_within(index.ids, float(r)) for r in radii], axis=1
    )
    assert np.array_equal(index.count_within_many(index.ids, radii), stacked)


@pytest.mark.parametrize("kind", METRIC_KINDS)
def test_count_within_many_matches_stacked_strings(string_space, kind):
    radii = _edge_radii(string_space)
    index = build_index(string_space, kind=kind)
    stacked = np.stack(
        [index.count_within(index.ids, float(r)) for r in radii], axis=1
    )
    assert np.array_equal(index.count_within_many(index.ids, radii), stacked)


@pytest.mark.parametrize("kind", METRIC_KINDS)
def test_count_within_many_matches_stacked_trees(tree_space, kind):
    radii = _edge_radii(tree_space)
    index = build_index(tree_space, kind=kind)
    stacked = np.stack(
        [index.count_within(index.ids, float(r)) for r in radii], axis=1
    )
    assert np.array_equal(index.count_within_many(index.ids, radii), stacked)


def test_count_within_many_subset_queries_and_subset_index(vector_edge_space):
    """Queries need not be indexed; the index need not cover everything."""
    space = vector_edge_space
    index = build_index(space, np.arange(0, 50), kind="vptree")
    queries = np.arange(50, 80)
    radii = _edge_radii(space)
    stacked = np.stack([index.count_within(queries, float(r)) for r in radii], axis=1)
    assert np.array_equal(index.count_within_many(queries, radii), stacked)


def test_count_within_many_rejects_unsorted_radii(vector_edge_space):
    index = build_index(vector_edge_space, kind="vptree")
    with pytest.raises(ValueError, match="ascending"):
        index.count_within_many(index.ids[:3], [2.0, 1.0])


# -- engine executors ----------------------------------------------------


@pytest.mark.parametrize("sparse_focused", [True, False])
@pytest.mark.parametrize("small_radii_only", [True, False])
def test_self_join_counts_modes_identical(vector_edge_space, sparse_focused, small_radii_only):
    space = vector_edge_space
    index = build_index(space, kind="vptree")
    diameter = index.diameter_estimate()
    radii = np.array([diameter / 2**k for k in range(7, -1, -1)])
    kwargs = dict(
        max_cardinality=12,
        sparse_focused=sparse_focused,
        small_radii_only=small_radii_only,
    )
    batched = BatchQueryEngine(index).self_join_counts(radii, **kwargs)
    per_point = BatchQueryEngine(index, mode="per_point").self_join_counts(radii, **kwargs)
    assert np.array_equal(batched, per_point)


def test_first_nonempty_radius_modes_identical(vector_edge_space):
    space = vector_edge_space
    index = build_index(space, np.arange(0, 60), kind="vptree")
    queries = np.arange(60, 100)
    radii = _edge_radii(space)
    batched = BatchQueryEngine(index).first_nonempty_radius(queries, radii)
    per_point = BatchQueryEngine(index, mode="per_point").first_nonempty_radius(
        queries, radii
    )
    assert np.array_equal(batched, per_point)
    # spot-check semantics against raw counts
    counts = index.count_within_many(queries, radii)
    for row in range(queries.size):
        hits = np.nonzero(counts[row] > 0)[0]
        expected = hits[0] if hits.size else -1
        assert batched[row] == expected


def test_engine_rejects_unknown_mode(vector_edge_space):
    index = build_index(vector_edge_space, kind="brute")
    with pytest.raises(ValueError, match="unknown engine mode"):
        BatchQueryEngine(index, mode="vectorized")


# -- full-pipeline differential: batched vs per_point McCatch ------------


def _assert_results_identical(res_a, res_b):
    assert res_a.n == res_b.n
    assert np.array_equal(res_a.point_scores, res_b.point_scores)
    assert np.array_equal(res_a.oracle.counts, res_b.oracle.counts)
    assert np.array_equal(res_a.oracle.x, res_b.oracle.x)
    assert np.array_equal(res_a.oracle.y, res_b.oracle.y)
    assert res_a.cutoff.value == res_b.cutoff.value
    assert len(res_a.microclusters) == len(res_b.microclusters)
    for mc_a, mc_b in zip(res_a.microclusters, res_b.microclusters):
        assert np.array_equal(mc_a.indices, mc_b.indices)
        assert mc_a.score == mc_b.score
        assert mc_a.bridge_length == mc_b.bridge_length


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_mccatch_differential_vectors(kind):
    rng = np.random.default_rng(3)
    X = np.vstack(
        [
            rng.normal(0, 1, (110, 2)),
            rng.normal(0, 0.02, (5, 2)) + [7.0, 7.0],
            [[12.0, -5.0]],
        ]
    )
    batched = McCatch(index=kind).fit(X)
    per_point = McCatch(index=kind, engine_mode="per_point").fit(X)
    _assert_results_identical(batched, per_point)
    assert batched.microclusters, "planted structure should be detected"


@pytest.mark.parametrize("kind", METRIC_KINDS)
def test_mccatch_differential_strings(kind):
    words = [
        "SMITH", "SMYTH", "SMITT", "JOHNSON", "JONSON", "JOHNSTON",
        "BRAUN", "BROWN", "BRAWN", "GARCIA", "GARZIA", "GARCIAS",
        "MILLER", "MILLAR", "MULLER", "XKRZQW", "XKRZQY",
    ]
    batched = McCatch(index=kind).fit(words, levenshtein)
    per_point = McCatch(index=kind, engine_mode="per_point").fit(words, levenshtein)
    _assert_results_identical(batched, per_point)


@pytest.mark.parametrize("kind", METRIC_KINDS)
def test_mccatch_differential_trees(tree_space, kind):
    batched = McCatch(index=kind).fit(tree_space)
    per_point = McCatch(index=kind, engine_mode="per_point").fit(tree_space)
    _assert_results_identical(batched, per_point)


# -- neighbor workloads --------------------------------------------------


def test_engine_knn_matches_bruteforce_ranking():
    # No duplicate points here: with exact ties at distance 0 the scipy
    # fast path's "strip the first column" self-exclusion is ambiguous
    # (historical baseline semantics, kept bit-compatible).
    rng = np.random.default_rng(5)
    space = MetricSpace(rng.normal(0, 1, (80, 3)))
    dm = space.distance_matrix()
    np.fill_diagonal(dm, np.inf)
    expected = np.sort(dm, axis=1)[:, :5]
    for kind in ("ckdtree", "vptree"):
        dists, ids = knn_distances(build_index(space, kind=kind), 5)
        assert np.allclose(dists, expected)
        rows = np.arange(len(space))[:, None]
        assert np.allclose(dm[rows, ids], dists)


def test_engine_knn_rejects_bad_k(vector_edge_space):
    index = build_index(vector_edge_space, kind="vptree")
    with pytest.raises(ValueError):
        knn_distances(index, 0)
    with pytest.raises(ValueError):
        knn_distances(index, len(index))


def test_nearest_distances_to_matches_loop(vector_edge_space):
    space = vector_edge_space
    rng = np.random.default_rng(11)
    objs = [rng.normal(0, 2, 3) for _ in range(17)]
    ids = np.arange(0, 40)
    got = nearest_distances_to(space, objs, ids)
    expected = np.array([space.distances_to(o, ids).min() for o in objs])
    assert np.array_equal(got, expected)


def test_nearest_distances_to_object_space(string_space):
    got = nearest_distances_to(string_space, ["SMIT", "ZZZZZZ"], np.arange(len(string_space)))
    expected = np.array(
        [
            min(levenshtein("SMIT", w) for w in string_space.data),
            min(levenshtein("ZZZZZZ", w) for w in string_space.data),
        ]
    )
    assert np.array_equal(got, expected)
