"""Tests for repro.eval: metrics, ranking, axiom harness, runtime, sensitivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    auroc,
    average_precision,
    fit_loglog_slope,
    format_rank_table,
    harmonic_mean_rank,
    match_planted_microcluster,
    max_f1,
    precision_recall_curve,
    ranking_positions,
    runtime_sweep,
    sweep_parameter,
)
from repro.eval.axioms import AxiomTrial, aggregate_trials


class TestAUROC:
    def test_perfect_separation(self):
        assert auroc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted(self):
        assert auroc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        assert auroc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_ties_midrank(self):
        # One positive tied with one negative among clean scores.
        v = auroc([0, 0, 1, 1], [0.1, 0.5, 0.5, 0.9])
        assert v == pytest.approx(0.875)

    def test_validation(self):
        with pytest.raises(ValueError):
            auroc([0, 0], [0.1, 0.2])  # no positives
        with pytest.raises(ValueError):
            auroc([0, 1], [np.nan, 0.2])
        with pytest.raises(ValueError):
            auroc([0, 2], [0.1, 0.2])

    @given(
        seed=st.integers(0, 500),
        n=st.integers(4, 60),
    )
    @settings(max_examples=60)
    def test_complement_symmetry(self, seed, n):
        rng = np.random.default_rng(seed)
        y = np.zeros(n, dtype=int)
        y[rng.choice(n, size=rng.integers(1, n), replace=False)] = 1
        if y.sum() == n:
            y[0] = 0
        s = rng.normal(size=n)
        assert auroc(y, s) == pytest.approx(1.0 - auroc(y, -s))


class TestAPAndF1:
    def test_ap_perfect(self):
        assert average_precision([0, 1, 1], [0.1, 0.8, 0.9]) == 1.0

    def test_ap_known_value(self):
        # Ranking: pos, neg, pos -> AP = (1/1 + 2/3) / 2.
        v = average_precision([1, 0, 1], [0.9, 0.8, 0.7])
        assert v == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_max_f1_perfect(self):
        assert max_f1([0, 0, 1], [0.0, 0.1, 0.9]) == 1.0

    def test_max_f1_known_value(self):
        # Best threshold takes the top 1: P=1, R=0.5 -> F1 = 2/3.
        v = max_f1([1, 1, 0, 0], [0.9, 0.1, 0.5, 0.4])
        assert v >= 2.0 / 3.0 - 1e-12

    def test_pr_curve_monotone_recall(self):
        y = [0, 1, 0, 1, 1]
        s = [0.1, 0.9, 0.3, 0.8, 0.2]
        p, r, t = precision_recall_curve(y, s)
        assert (np.diff(r) >= 0).all()
        assert r[-1] == 1.0

    @given(seed=st.integers(0, 300), n=st.integers(4, 40))
    @settings(max_examples=40)
    def test_metrics_in_unit_interval(self, seed, n):
        rng = np.random.default_rng(seed)
        y = np.zeros(n, dtype=int)
        y[: max(1, n // 3)] = 1
        rng.shuffle(y)
        s = rng.normal(size=n)
        for metric in (auroc, average_precision, max_f1):
            assert 0.0 <= metric(y, s) <= 1.0


class TestRanking:
    def test_positions_simple(self):
        ranks = ranking_positions({"a": 0.9, "b": 0.5, "c": 0.7})
        assert ranks == {"a": 1.0, "c": 2.0, "b": 3.0}

    def test_positions_ties_average(self):
        ranks = ranking_positions({"a": 0.9, "b": 0.9, "c": 0.1})
        assert ranks["a"] == ranks["b"] == 1.5
        assert ranks["c"] == 3.0

    def test_harmonic_mean_rank(self):
        per_ds = [{"a": 0.9, "b": 0.5}, {"a": 0.4, "b": 0.8}]
        hm = harmonic_mean_rank(per_ds)
        # Both methods ranked 1 and 2 once: HM = 2 / (1/1 + 1/2) = 4/3.
        assert hm["a"] == pytest.approx(4.0 / 3.0)
        assert hm["b"] == pytest.approx(4.0 / 3.0)

    def test_missing_methods_skipped(self):
        per_ds = [{"a": 0.9}, {"a": 0.4, "b": 0.8}]
        hm = harmonic_mean_rank(per_ds)
        assert hm["b"] == pytest.approx(1.0)  # competed once, won

    def test_winner_has_lowest_hmean(self):
        per_ds = [{"a": 0.9, "b": 0.5, "c": 0.1}] * 3
        hm = harmonic_mean_rank(per_ds)
        assert hm["a"] < hm["b"] < hm["c"]

    def test_format_table(self):
        table = format_rank_table({"auroc": {"McCatch": 1.8, "LOF": 4.9}})
        assert "McCatch" in table and "1.8" in table


class TestAxiomHarness:
    def test_aggregate_significant(self):
        trials = [AxiomTrial(red_score=10.0 + 0.01 * i, green_score=12.0 + 0.01 * i)
                  for i in range(20)]
        res = aggregate_trials("gaussian", "isolation", trials)
        assert res.obeys and res.statistic > 0

    def test_aggregate_fail_on_missed_mc(self):
        trials = [AxiomTrial(red_score=10.0, green_score=float("nan"))] * 5
        res = aggregate_trials("cross", "isolation", trials)
        assert res.failed
        assert res.cell() == "Fail"

    def test_match_planted(self, blob_with_mc):
        from repro import McCatch

        X, labels = blob_with_mc
        result = McCatch().fit(X)
        planted = np.nonzero(labels == 1)[0]
        score = match_planted_microcluster(result, planted)
        assert np.isfinite(score)

    def test_match_planted_missing(self, blob_with_mc):
        from repro import McCatch

        X, labels = blob_with_mc
        result = McCatch().fit(X)
        # A fake "planted" cluster deep inside the inliers is not found.
        fake = np.arange(50, 80)
        assert np.isnan(match_planted_microcluster(result, fake))


class TestRuntime:
    def test_slope_of_quadratic_process(self):
        sizes = [100, 200, 400, 800]
        seconds = [1e-4 * n**2 for n in sizes]
        assert fit_loglog_slope(sizes, seconds) == pytest.approx(2.0, abs=0.01)

    def test_sweep_runs(self):
        result = runtime_sweep("noop", lambda n: sum(range(n)), [1000, 2000, 4000])
        assert len(result.points) == 3
        assert "noop" in result.table()

    def test_slope_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([10], [0.1])


class TestSensitivity:
    def test_sweep_parameter_flat_on_easy_data(self, blob_with_mc):
        X, labels = blob_with_mc
        curve = sweep_parameter("blob", X, (labels > 0).astype(int), "a", grid=(13, 15, 17))
        assert curve.aurocs.shape == (3,)
        assert curve.spread < 0.1  # Fig. 9: near-flat

    def test_bad_parameter_name(self, blob_with_mc):
        X, labels = blob_with_mc
        with pytest.raises(ValueError):
            sweep_parameter("blob", X, labels, "z", grid=(1, 2))
