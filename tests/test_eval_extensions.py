"""Eval extensions: rank correlation, top-k metrics, bootstrap CIs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    auroc,
    bootstrap_metric,
    kendall_tau,
    precision_at_k,
    precision_at_n_outliers,
    recall_at_k,
    spearman_rho,
    top_k_indices,
)

vectors = st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=30)


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0

    def test_known_value(self):
        # 1 discordant pair of 6 -> (5 - 1) / 6
        assert kendall_tau([1, 2, 3, 4], [1, 2, 4, 3]) == pytest.approx(4 / 6)

    def test_constant_input_returns_zero(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3]) == 0.0

    def test_matches_scipy(self):
        from scipy.stats import kendalltau

        rng = np.random.default_rng(0)
        for _ in range(10):
            a, b = rng.normal(size=20), rng.normal(size=20)
            assert kendall_tau(a, b) == pytest.approx(kendalltau(a, b).statistic)

    def test_matches_scipy_with_ties(self):
        from scipy.stats import kendalltau

        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.integers(0, 4, size=25).astype(float)
            b = rng.integers(0, 4, size=25).astype(float)
            expected = kendalltau(a, b).statistic
            got = kendall_tau(a, b)
            if np.isnan(expected):
                assert got == 0.0
            else:
                assert got == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError, match="length mismatch"):
            kendall_tau([1, 2], [1, 2, 3])
        with pytest.raises(ValueError, match="at least 2"):
            kendall_tau([1], [1])

    @given(vectors)
    @settings(max_examples=40, deadline=None)
    def test_self_correlation_is_one_or_zero(self, a):
        tau = kendall_tau(a, a)
        # 1.0 normally; 0.0 for all-constant input.
        assert tau == pytest.approx(1.0) or (tau == 0.0 and len(set(a)) == 1)

    @given(vectors.flatmap(
        lambda a: st.tuples(st.just(a), st.permutations(a))
    ))
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, pair):
        a, b = pair
        assert kendall_tau(a, b) == pytest.approx(kendall_tau(b, a))


class TestSpearman:
    def test_monotone_transform_invariance(self):
        a = np.array([0.1, 2.0, 3.5, 8.0, 9.0])
        assert spearman_rho(a, np.exp(a)) == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy.stats import spearmanr

        rng = np.random.default_rng(2)
        for _ in range(10):
            a, b = rng.normal(size=15), rng.normal(size=15)
            assert spearman_rho(a, b) == pytest.approx(spearmanr(a, b).statistic)

    def test_matches_scipy_with_ties(self):
        from scipy.stats import spearmanr

        rng = np.random.default_rng(3)
        a = rng.integers(0, 3, size=30).astype(float)
        b = rng.integers(0, 3, size=30).astype(float)
        assert spearman_rho(a, b) == pytest.approx(spearmanr(a, b).statistic)

    def test_constant_returns_zero(self):
        assert spearman_rho([5, 5, 5], [1, 2, 3]) == 0.0


class TestTopK:
    def test_top_k_indices_order(self):
        scores = [0.1, 0.9, 0.5, 0.9]
        # Stable: earlier of the tied 0.9s first.
        assert list(top_k_indices(scores, 2)) == [1, 3]

    def test_precision_at_k(self):
        y = [False, True, False, True, False]
        s = [0.1, 0.9, 0.2, 0.8, 0.3]
        assert precision_at_k(y, s, 2) == 1.0
        assert precision_at_k(y, s, 5) == pytest.approx(0.4)

    def test_recall_at_k(self):
        y = [False, True, False, True, False]
        s = [0.1, 0.9, 0.2, 0.8, 0.3]
        assert recall_at_k(y, s, 1) == pytest.approx(0.5)
        assert recall_at_k(y, s, 2) == 1.0

    def test_recall_no_positives(self):
        assert recall_at_k([False, False], [0.1, 0.2], 1) == 0.0

    def test_precision_at_n_outliers_equals_recall_there(self):
        rng = np.random.default_rng(0)
        y = rng.random(50) < 0.2
        y[0] = True  # ensure at least one positive
        s = rng.random(50)
        k = int(y.sum())
        assert precision_at_n_outliers(y, s) == pytest.approx(recall_at_k(y, s, k))

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            precision_at_k([True, False], [1.0, 0.0], 3)
        with pytest.raises(ValueError, match="length mismatch"):
            precision_at_k([True], [1.0, 0.0], 1)

    def test_perfect_detector(self):
        y = np.zeros(100, dtype=bool)
        y[:5] = True
        s = np.where(y, 1.0, 0.0)
        assert precision_at_k(y, s, 5) == 1.0
        assert recall_at_k(y, s, 5) == 1.0


class TestBootstrap:
    @pytest.fixture(scope="class")
    def labeled(self):
        rng = np.random.default_rng(7)
        y = np.zeros(200, dtype=bool)
        y[:20] = True
        s = np.where(y, rng.normal(2, 1, 200), rng.normal(0, 1, 200))
        return y, s

    def test_interval_brackets_estimate(self, labeled):
        y, s = labeled
        res = bootstrap_metric(auroc, y, s, n_resamples=200)
        assert res.lower <= res.estimate <= res.upper
        assert res.estimate in res

    def test_interval_width_shrinks_with_confidence(self, labeled):
        y, s = labeled
        wide = bootstrap_metric(auroc, y, s, n_resamples=200, confidence=0.99)
        narrow = bootstrap_metric(auroc, y, s, n_resamples=200, confidence=0.5)
        assert (wide.upper - wide.lower) >= (narrow.upper - narrow.lower)

    def test_reproducible(self, labeled):
        y, s = labeled
        a = bootstrap_metric(auroc, y, s, n_resamples=50, random_state=3)
        b = bootstrap_metric(auroc, y, s, n_resamples=50, random_state=3)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_validation(self, labeled):
        y, s = labeled
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_metric(auroc, y, s, confidence=1.0)
        with pytest.raises(ValueError, match="n_resamples"):
            bootstrap_metric(auroc, y, s, n_resamples=0)
        with pytest.raises(ValueError, match="both classes"):
            bootstrap_metric(auroc, np.zeros(10, bool), np.arange(10.0))

    def test_repr_mentions_confidence(self, labeled):
        y, s = labeled
        assert "95% CI" in repr(bootstrap_metric(auroc, y, s, n_resamples=20))
