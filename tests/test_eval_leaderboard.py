"""Leaderboard: the programmatic Table IV."""

import numpy as np
import pytest

from repro import McCatch
from repro.baselines import LOF, IForest
from repro.datasets.registry import LoadedDataset
from repro.eval import Leaderboard, evaluate_detectors
from repro.metric.strings import levenshtein


def _toy_dataset(name: str, seed: int) -> LoadedDataset:
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (150, 2)), rng.uniform(8, 10, (5, 2))])
    y = np.zeros(X.shape[0], dtype=bool)
    y[150:] = True
    return LoadedDataset(name=name, data=X, labels=y, metric=None)


def _string_dataset() -> LoadedDataset:
    words = ["smith", "smyth", "smitt", "smithe"] * 25 + ["xqwzkjy", "xqwzkjx"]
    y = np.zeros(len(words), dtype=bool)
    y[100:] = True
    return LoadedDataset(name="toy-names", data=words, labels=y, metric=levenshtein)


class TestEvaluateDetectors:
    @pytest.fixture(scope="class")
    def board(self) -> Leaderboard:
        detectors = [McCatch(), LOF(), IForest(random_state=0)]
        datasets = [_toy_dataset("toy-a", 0), _toy_dataset("toy-b", 1)]
        return evaluate_detectors(detectors, datasets)

    def test_every_cell_present(self, board):
        assert len(board.cells) == 6
        assert all(cell.ok for cell in board.cells)

    def test_metrics_are_paper_trio(self, board):
        assert set(board.cells[0].metrics) == {"auroc", "ap", "max_f1"}

    def test_easy_data_scores_high(self, board):
        for cell in board.cells:
            assert cell.metrics["auroc"] > 0.9, (cell.detector, cell.dataset)

    def test_harmonic_mean_ranks_cover_all_detectors(self, board):
        hm = board.harmonic_mean_ranks("auroc")
        assert set(hm) == {"McCatch", "LOF", "iForest"}
        assert all(1.0 <= v <= 3.0 for v in hm.values())

    def test_render_is_a_table(self, board):
        text = board.render()
        assert "dataset" in text and "h.mean rank" in text
        assert "toy-a" in text and "toy-b" in text

    def test_timing_recorded(self, board):
        assert all(cell.seconds >= 0 for cell in board.cells)


class TestFailureHandling:
    def test_baseline_fails_on_metric_data_mccatch_succeeds(self):
        board = evaluate_detectors([McCatch(), LOF()], [_string_dataset()])
        by_name = {c.detector: c for c in board.cells}
        assert by_name["McCatch"].ok
        assert not by_name["LOF"].ok
        assert "vector data" in by_name["LOF"].error

    def test_failed_cells_do_not_compete(self):
        board = evaluate_detectors([McCatch(), LOF()], [_string_dataset()])
        hm = board.harmonic_mean_ranks("auroc")
        assert "LOF" not in hm
        assert hm["McCatch"] == 1.0

    def test_failures_listed(self):
        board = evaluate_detectors([LOF()], [_string_dataset()])
        assert len(board.failures()) == 1
        assert "fail" in board.render()


class TestValidation:
    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError, match="detector"):
            evaluate_detectors([], [_toy_dataset("x", 0)])
        with pytest.raises(ValueError, match="dataset"):
            evaluate_detectors([McCatch()], [])

    def test_unlabeled_dataset_rejected(self):
        ds = LoadedDataset(name="nolabels", data=np.zeros((10, 2)), labels=None, metric=None)
        with pytest.raises(ValueError, match="no labels"):
            evaluate_detectors([McCatch()], [ds])

    def test_named_datasets_loaded(self):
        board = evaluate_detectors([IForest(random_state=0)], ["wine"], scale=1.0)
        assert board.cells[0].dataset == "wine"
        assert board.cells[0].ok

    def test_custom_metric_functions(self):
        from repro.eval import precision_at_n_outliers

        board = evaluate_detectors(
            [McCatch()], [_toy_dataset("toy", 2)],
            metrics={"p@n": precision_at_n_outliers},
        )
        assert set(board.cells[0].metrics) == {"p@n"}
