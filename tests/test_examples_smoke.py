"""Smoke tests: the fast example scripts must run end-to-end.

Examples are user-facing documentation; a broken example is a broken
promise.  Each script runs in a subprocess with the repo's interpreter
and must exit 0.  Only the fast examples are exercised here — the
heavyweight comparisons (compare_detectors) are bench territory.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "streaming_logs.py",
    "join_principles.py",
    "html_report.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path):
    args = [sys.executable, str(EXAMPLES / script)]
    if script == "html_report.py":
        args.append(str(tmp_path))  # keep artifacts out of the repo
    proc = subprocess.run(
        args, capture_output=True, text=True, timeout=600, cwd=tmp_path
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"


def test_html_report_example_writes_artifacts(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "html_report.py"), str(tmp_path)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert (tmp_path / "mccatch_report.html").exists()
    assert (tmp_path / "mccatch_result.json").exists()
    assert (tmp_path / "mccatch_result.md").exists()


def test_every_example_has_docstring_and_main_guard_or_script_style():
    """Each example is a documented, runnable script."""
    for path in EXAMPLES.glob("*.py"):
        text = path.read_text()
        assert text.startswith('"""'), f"{path.name} lacks a module docstring"
        assert "Run:" in text or "python examples/" in text, (
            f"{path.name} should say how to run it"
        )
