"""Tests for the Table I feature matrix metadata."""


from repro.baselines import all_detectors
from repro.baselines.features import PROPERTY_LABELS, TABLE1, format_feature_matrix


class TestTable1:
    def test_mccatch_meets_every_spec(self):
        row = TABLE1["McCatch"]
        for attr, _ in PROPERTY_LABELS:
            assert getattr(row, attr), f"McCatch must satisfy {attr}"

    def test_no_competitor_meets_every_goal(self):
        goals = ("general_input", "general_output", "principled", "scalable", "hands_off")
        for name, row in TABLE1.items():
            if name == "McCatch":
                continue
            assert not all(getattr(row, attr) for attr in goals), name

    def test_gen2out_is_the_only_other_group_scorer(self):
        scorers = [n for n, r in TABLE1.items() if r.general_output]
        assert sorted(scorers) == ["Gen2Out", "McCatch"]

    def test_every_implemented_detector_has_a_row(self):
        for det in all_detectors():
            assert det.name in TABLE1, det.name

    def test_determinism_flags_match_implementations(self):
        for det in all_detectors():
            # A method flagged deterministic in Table I must be
            # implemented deterministically (the converse can differ:
            # our seeded implementations of nondeterministic methods).
            if TABLE1[det.name].deterministic:
                assert det.deterministic, det.name

    def test_matrix_renders(self):
        text = format_feature_matrix()
        assert "McCatch" in text
        assert "G1 General Input" in text
        # Every property row present.
        for _, label in PROPERTY_LABELS:
            assert label in text
