"""Structural equivalence of the flat array-backed trees.

The flat refactor must not move a single count: ``count_within_many``
over :class:`~repro.index.base.FlatTree` storage has to agree bit for
bit with the preserved pre-refactor object-tree walks
(:mod:`repro.index.reference`) and with the brute-force oracle — for
every index kind, on vector, string, and tree data, including the
PR 1 regression class: radius 0 with duplicate points and radii that
tie exact pairwise distances.
"""

import numpy as np
import pytest

from repro.index import (
    BallTree,
    BruteForceIndex,
    CoverTree,
    FlatTree,
    MTree,
    SlimTree,
    VPTree,
)
from repro.index.base import concat_ranges
from repro.index.reference import ReferenceBallTree, ReferenceVPTree
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein
from repro.metric.trees import LabeledTree, tree_edit_distance

FLAT_KINDS = [VPTree, BallTree, CoverTree, MTree, SlimTree]


@pytest.fixture(scope="module")
def vspace():
    """Vector data with duplicates and a tight planted pair."""
    rng = np.random.default_rng(5)
    X = np.vstack(
        [
            rng.normal(0, 1, (90, 2)),
            np.zeros((6, 2)),  # exact duplicates
            [[7.0, 7.0], [7.0, 7.0], [7.2, 7.0]],  # duplicate outlier pair
        ]
    )
    return MetricSpace(X)


@pytest.fixture(scope="module")
def sspace():
    rng = np.random.default_rng(9)
    alphabet = list("ABCD")
    words = ["".join(rng.choice(alphabet, size=rng.integers(1, 8))) for _ in range(45)]
    words += ["AAAA"] * 4  # duplicates for the radius-0 class
    return MetricSpace(words, levenshtein)


@pytest.fixture(scope="module")
def tspace():
    rng = np.random.default_rng(13)

    def random_tree(depth: int) -> LabeledTree:
        label = "abcd"[int(rng.integers(4))]
        if depth == 0:
            return LabeledTree(label)
        children = [random_tree(depth - 1) for _ in range(int(rng.integers(0, 3)))]
        return LabeledTree(label, children)

    trees = [random_tree(2) for _ in range(18)]
    trees += [LabeledTree("a", [LabeledTree("b")])] * 3  # duplicates
    return MetricSpace(trees, tree_edit_distance)


def boundary_radii(space: MetricSpace) -> np.ndarray:
    """A ladder heavy on the regression class: 0, tie radii, big radii."""
    d = space.distances(0, np.arange(min(len(space), 12)))
    ties = [float(v) for v in d if v > 0][:4]
    diam = float(space.distances(0, np.arange(len(space))).max())
    ladder = [0.0, 0.0] + ties + [0.5 * diam, diam, 1.5 * diam + 1.0]
    return np.sort(np.array(ladder, dtype=np.float64))


SPACES = ["vspace", "sspace", "tspace"]


@pytest.mark.parametrize("cls", FLAT_KINDS)
@pytest.mark.parametrize("fixture", SPACES)
class TestFlatMatchesBruteForce:
    def test_count_within_many_bit_identical(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        expected = BruteForceIndex(space).count_within_many(q, radii)
        got = cls(space).count_within_many(q, radii)
        assert np.array_equal(got, expected)

    def test_count_within_each_boundary_radius(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        brute = BruteForceIndex(space)
        idx = cls(space)
        q = np.arange(len(space))
        for r in boundary_radii(space):
            assert np.array_equal(
                idx.count_within(q, float(r)), brute.count_within(q, float(r))
            )


@pytest.mark.parametrize(
    "flat_cls,ref_cls", [(VPTree, ReferenceVPTree), (BallTree, ReferenceBallTree)]
)
@pytest.mark.parametrize("fixture", SPACES)
class TestFlatMatchesObjectWalk:
    """Flat counts equal the pre-refactor object-tree walks bit for bit."""

    def test_count_within_many(self, flat_cls, ref_cls, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        assert np.array_equal(
            flat_cls(space).count_within_many(q, radii),
            ref_cls(space).count_within_many(q, radii),
        )

    def test_subset_index(self, flat_cls, ref_cls, fixture, request):
        space = request.getfixturevalue(fixture)
        ids = np.arange(0, len(space), 2)
        queries = np.arange(1, len(space), 3)
        radii = boundary_radii(space)
        assert np.array_equal(
            flat_cls(space, ids).count_within_many(queries, radii),
            ref_cls(space, ids).count_within_many(queries, radii),
        )


class TestFlatTreeInvariants:
    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_permutation_covers_ids(self, cls, vspace):
        flat = cls(vspace).flat
        assert sorted(flat.elems.tolist()) == list(range(len(vspace)))

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_children_contiguous_and_nested(self, cls, vspace):
        flat = cls(vspace).flat
        for i in range(flat.n_nodes):
            if flat.is_leaf(i):
                continue
            children = range(int(flat.child_lo[i]), int(flat.child_hi[i]))
            assert len(children) >= 1
            for c in children:
                assert flat.elem_lo[i] <= flat.elem_lo[c] <= flat.elem_hi[c] <= flat.elem_hi[i]

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_covering_radius_holds(self, cls, vspace):
        flat = cls(vspace).flat
        for i in range(flat.n_nodes):
            members = flat.elems[flat.elem_lo[i] : flat.elem_hi[i]]
            d = vspace.distances(int(flat.center[i]), members)
            assert d.max() <= flat.radius[i] + 1e-9

    def test_vp_vantage_held_outside_children(self, vspace):
        flat = VPTree(vspace).flat
        assert flat.vp_split
        for i in range(flat.n_nodes):
            if flat.is_leaf(i):
                continue
            # Vantage at the front of the slice; the two children split
            # the rest exactly.
            assert int(flat.elems[flat.elem_lo[i]]) == int(flat.center[i])
            inside, outside = int(flat.child_lo[i]), int(flat.child_lo[i]) + 1
            assert int(flat.child_hi[i]) - int(flat.child_lo[i]) == 2
            assert flat.elem_lo[inside] == flat.elem_lo[i] + 1
            assert flat.elem_hi[inside] == flat.elem_lo[outside]
            assert flat.elem_hi[outside] == flat.elem_hi[i]
            assert flat.size[inside] + flat.size[outside] + 1 == flat.size[i]

    def test_vp_threshold_separates_children(self, vspace):
        flat = VPTree(vspace).flat
        for i in range(flat.n_nodes):
            if flat.is_leaf(i):
                continue
            v = int(flat.center[i])
            inside, outside = int(flat.child_lo[i]), int(flat.child_lo[i]) + 1
            d_in = vspace.distances(v, flat.elems[flat.elem_lo[inside] : flat.elem_hi[inside]])
            d_out = vspace.distances(v, flat.elems[flat.elem_lo[outside] : flat.elem_hi[outside]])
            assert d_in.max() <= flat.threshold[i]
            assert d_out.min() > flat.threshold[i]

    def test_mtree_parent_distances_exact(self, vspace):
        tree = MTree(vspace, capacity=4)
        flat = tree.flat
        assert flat.d_parent is not None
        parent_of = np.full(flat.n_nodes, -1)
        for i in range(flat.n_nodes):
            for c in range(int(flat.child_lo[i]), int(flat.child_hi[i])):
                parent_of[c] = i
        for i in range(1, flat.n_nodes):
            p = parent_of[i]
            assert p >= 0
            expected = vspace.distance(int(flat.center[i]), int(flat.center[p]))
            assert flat.d_parent[i] == expected

    def test_sizes_match_slices(self, vspace):
        for cls in FLAT_KINDS:
            flat = cls(vspace).flat
            assert np.array_equal(flat.size, flat.elem_hi - flat.elem_lo)

    def test_leaf_helpers(self, vspace):
        flat = BallTree(vspace, leaf_size=8).flat
        assert sum(flat.leaf_sizes()) == len(vspace)
        assert flat.max_depth() >= 2
        first_leaf = next(i for i in range(flat.n_nodes) if flat.is_leaf(i))
        assert flat.bucket(first_leaf).size == flat.size[first_leaf]

    def test_round_trip_arrays(self, vspace):
        flat = VPTree(vspace).flat
        rebuilt = FlatTree.from_arrays(
            {k: np.asarray(v) for k, v in flat.to_arrays().items()}
        )
        assert rebuilt.vp_split == flat.vp_split
        assert np.array_equal(rebuilt.elems, flat.elems)
        assert np.array_equal(rebuilt.threshold, flat.threshold)

    def test_validation_rejects_ragged_arrays(self):
        with pytest.raises(ValueError, match="shape"):
            FlatTree(
                center=[0], threshold=[0.0, 1.0], radius=[0.0], size=[1],
                child_lo=[0], child_hi=[0], elem_lo=[0], elem_hi=[1], elems=[0],
            )


class TestSlimDownInvalidatesFreeze:
    def test_post_slim_counts_still_exact(self, vspace):
        tree = SlimTree(vspace, capacity=4, slim_down=False)
        _ = tree.count_within_many(np.arange(5), np.array([0.5, 1.0]))  # freeze now
        tree.slim_down()
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        expected = BruteForceIndex(vspace).count_within_many(q, radii)
        assert np.array_equal(tree.count_within_many(q, radii), expected)


class TestDeterminism:
    def test_vptree_reproducible(self, vspace):
        t1, t2 = VPTree(vspace), VPTree(vspace)
        assert np.array_equal(t1.flat.elems, t2.flat.elems)
        assert np.array_equal(t1.flat.center, t2.flat.center)
        assert np.array_equal(t1.flat.threshold, t2.flat.threshold)


class TestConcatRanges:
    def test_matches_naive(self):
        starts = np.array([3, 10, 4, 0])
        sizes = np.array([2, 1, 4, 3])
        expected = np.concatenate([np.arange(s, s + k) for s, k in zip(starts, sizes)])
        assert np.array_equal(concat_ranges(starts, sizes), expected)

    def test_empty(self):
        assert concat_ranges(np.array([], dtype=np.intp), np.array([], dtype=np.intp)).size == 0
