"""Behavioural checks of the paper's five goals (Table I / Sec. I).

G1 General Input — works on any metric dataset, vectors or not.
G2 General Output — ranks singleton and nonsingleton mcs together.
G3 Principled — obeys the Isolation and Cardinality axioms.
G4 Scalable — subquadratic runtime growth.
G5 'Hands-Off' — defaults work untouched; results insensitive nearby.
"""

import time

import numpy as np
import pytest

from repro import McCatch
from repro.datasets import make_axiom_dataset, make_last_names, make_skeletons, uniform_cube
from repro.eval import auroc, fit_loglog_slope, run_axiom_trial
from repro.metric.strings import levenshtein
from repro.metric.trees import tree_edit_distance


class TestG1GeneralInput:
    def test_vector_data(self, blob_with_mc):
        X, labels = blob_with_mc
        assert auroc((labels > 0).astype(int), McCatch().fit(X).point_scores) > 0.95

    def test_string_data(self):
        names, y = make_last_names(n_inliers=150, n_outliers=8, random_state=0)
        result = McCatch().fit(names, levenshtein)
        assert auroc(y, result.point_scores) > 0.7

    def test_tree_data(self):
        trees, y = make_skeletons(n_humans=25, n_animals=3, random_state=0)
        result = McCatch().fit(trees, tree_edit_distance)
        assert auroc(y, result.point_scores) > 0.9

    def test_custom_callable_metric(self):
        data = list(range(50)) + [500, 501]
        result = McCatch().fit(data, lambda a, b: float(abs(a - b)))
        assert {50, 51} <= set(map(int, result.outlier_indices))


class TestG2GeneralOutput:
    def test_singletons_and_clusters_in_one_ranking(self, blob_with_mc):
        X, _ = blob_with_mc
        result = McCatch().fit(X)
        cards = {m.cardinality for m in result.microclusters}
        assert 1 in cards and max(cards) >= 8
        assert [m.score for m in result.microclusters] == sorted(
            (m.score for m in result.microclusters), reverse=True
        )


class TestG3Principled:
    @pytest.mark.parametrize("shape", ["gaussian", "cross", "arc"])
    def test_isolation_axiom(self, shape):
        ds = make_axiom_dataset(shape, "isolation", n_inliers=2000, random_state=0)
        t = run_axiom_trial(ds)
        assert t.found_both
        assert t.green_score >= t.red_score

    @pytest.mark.parametrize("shape", ["gaussian", "cross", "arc"])
    def test_cardinality_axiom(self, shape):
        ds = make_axiom_dataset(shape, "cardinality", n_inliers=2000, random_state=0)
        t = run_axiom_trial(ds)
        assert t.found_both
        assert t.green_score > t.red_score


class TestG4Scalable:
    def test_subquadratic_on_uniform(self):
        sizes = [1000, 2000, 4000, 8000]
        seconds = []
        for n in sizes:
            X = uniform_cube(n, 2, random_state=0)
            t0 = time.perf_counter()
            McCatch().fit(X)
            seconds.append(time.perf_counter() - t0)
        slope = fit_loglog_slope(sizes, seconds)
        assert slope < 1.9  # clearly below quadratic


class TestG5HandsOff:
    def test_defaults_work_on_diverse_data(self, blob_with_mc):
        X, labels = blob_with_mc
        y = (labels > 0).astype(int)
        assert auroc(y, McCatch().fit(X).point_scores) > 0.95

    def test_insensitive_to_a(self, blob_with_mc):
        X, labels = blob_with_mc
        y = (labels > 0).astype(int)
        values = [auroc(y, McCatch(n_radii=a).fit(X).point_scores) for a in (13, 15, 17)]
        assert max(values) - min(values) < 0.05

    def test_insensitive_to_b(self, blob_with_mc):
        X, labels = blob_with_mc
        y = (labels > 0).astype(int)
        values = [
            auroc(y, McCatch(max_slope=b).fit(X).point_scores) for b in (0.08, 0.10, 0.12)
        ]
        assert max(values) - min(values) < 0.05

    def test_insensitive_to_c(self, blob_with_mc):
        X, labels = blob_with_mc
        y = (labels > 0).astype(int)
        values = [
            auroc(y, McCatch(max_cardinality_fraction=f).fit(X).point_scores)
            for f in (0.08, 0.10, 0.12)
        ]
        assert max(values) - min(values) < 0.05


class TestDeterminismAndExplainability:
    """The two extra Table I rows: deterministic, explainable results."""

    def test_deterministic_across_runs(self, blob_with_mc):
        X, _ = blob_with_mc
        a = McCatch().fit(X)
        b = McCatch().fit(X)
        assert np.array_equal(a.point_scores, b.point_scores)

    def test_oracle_plot_explains_detection(self, blob_with_mc):
        # Every detected outlier is justified by its Oracle-plot rungs.
        X, _ = blob_with_mc
        res = McCatch().fit(X)
        cut = res.cutoff.index
        for i in res.outlier_indices:
            assert (
                res.oracle.first_end_index[i] >= cut
                or res.oracle.middle_end_index[i] >= cut
            )
