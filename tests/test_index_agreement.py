"""Cross-index agreement: every tree must match the brute-force oracle.

The single most important index property: ``count_within`` and
``pairs_within`` agree exactly with exhaustive computation, for every
index kind, on vector and nondimensional data, across radii.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    BallTree,
    BruteForceIndex,
    CKDTreeIndex,
    CoverTree,
    KDTree,
    LAESAIndex,
    MTree,
    RTree,
    SlimTree,
    VPTree,
    build_index,
)
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein

VECTOR_KINDS = [VPTree, KDTree, CKDTreeIndex, MTree, SlimTree, RTree,
                CoverTree, BallTree, LAESAIndex]
METRIC_KINDS = [VPTree, MTree, SlimTree, CoverTree, BallTree, LAESAIndex]


@pytest.fixture(scope="module")
def vspace(small_points):
    return MetricSpace(small_points)


@pytest.fixture(scope="module")
def sspace():
    rng = np.random.default_rng(3)
    alphabet = "ABCDEF"
    words = ["".join(rng.choice(list(alphabet), size=rng.integers(2, 9))) for _ in range(40)]
    return MetricSpace(words, levenshtein)


@pytest.mark.parametrize("cls", VECTOR_KINDS)
class TestVectorAgreement:
    @pytest.mark.parametrize("radius_frac", [0.01, 0.1, 0.3, 1.0])
    def test_counts_match_bruteforce(self, cls, vspace, radius_frac):
        brute = BruteForceIndex(vspace)
        radius = radius_frac * brute.diameter_estimate()
        idx = cls(vspace)
        queries = np.arange(len(vspace))
        assert np.array_equal(idx.count_within(queries, radius),
                              brute.count_within(queries, radius))

    def test_counts_on_subset(self, cls, vspace):
        ids = np.arange(0, len(vspace), 2)
        brute = BruteForceIndex(vspace, ids)
        idx = cls(vspace, ids)
        queries = np.arange(1, len(vspace), 3)
        radius = 0.2 * brute.diameter_estimate()
        assert np.array_equal(idx.count_within(queries, radius),
                              brute.count_within(queries, radius))

    def test_pairs_match_bruteforce(self, cls, vspace):
        brute = BruteForceIndex(vspace)
        radius = 0.15 * brute.diameter_estimate()
        expected = set(brute.pairs_within(radius))
        got = set(cls(vspace).pairs_within(radius))
        assert got == expected

    def test_zero_radius_counts_self_and_duplicates(self, cls):
        X = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        idx = cls(MetricSpace(X))
        counts = idx.count_within(np.arange(4), 0.0)
        assert list(counts) == [2, 2, 1, 1]

    def test_diameter_estimate_positive_and_bounded(self, cls, vspace):
        est = cls(vspace).diameter_estimate()
        true = vspace.distance_matrix().max()
        assert est > 0
        # Estimates are within a factor 2 of the truth (ball/box bounds).
        assert 0.5 * true <= est <= 2.0 * true + 1e-9


@pytest.mark.parametrize("cls", METRIC_KINDS)
class TestMetricAgreement:
    @pytest.mark.parametrize("radius", [1.0, 3.0, 6.0])
    def test_counts_match_bruteforce(self, cls, sspace, radius):
        brute = BruteForceIndex(sspace)
        idx = cls(sspace)
        queries = np.arange(len(sspace))
        assert np.array_equal(idx.count_within(queries, radius),
                              brute.count_within(queries, radius))

    def test_pairs_match_bruteforce(self, cls, sspace):
        brute = BruteForceIndex(sspace)
        expected = set(brute.pairs_within(2.0))
        assert set(cls(sspace).pairs_within(2.0)) == expected


class TestPropertyBasedAgreement:
    # radius_frac stops short of 1.0: at radius == diameter the query
    # radius coincides *exactly* with a pairwise distance, and BLAS
    # computes the same Euclidean distance with last-ulp differences
    # depending on operand shapes (1x1 vs 1xn kernels).  Ties at the
    # last ulp of an exact boundary are outside the agreement contract;
    # every other radius agrees bit-exactly.
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(5, 60),
        dim=st.integers(1, 4),
        radius_frac=st.floats(0.01, 0.97),
    )
    @settings(max_examples=30, deadline=None)
    def test_vptree_matches_brute_on_random_data(self, seed, n, dim, radius_frac):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, dim)) * rng.uniform(0.1, 10)
        space = MetricSpace(X)
        brute = BruteForceIndex(space)
        radius = radius_frac * max(brute.diameter_estimate(), 1e-6)
        vp = VPTree(space, leaf_size=4)
        q = np.arange(n)
        assert np.array_equal(vp.count_within(q, radius), brute.count_within(q, radius))

    @given(seed=st.integers(0, 1000), n=st.integers(5, 50))
    @settings(max_examples=20, deadline=None)
    def test_mtree_matches_brute_on_random_data(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 2))
        space = MetricSpace(X)
        brute = BruteForceIndex(space)
        radius = 0.3 * brute.diameter_estimate()
        mt = MTree(space, capacity=4)
        q = np.arange(n)
        assert np.array_equal(mt.count_within(q, radius), brute.count_within(q, radius))


class TestFactory:
    def test_auto_vector_uses_ckdtree(self, vspace):
        assert isinstance(build_index(vspace), CKDTreeIndex)

    def test_auto_metric_uses_vptree(self, sspace):
        assert isinstance(build_index(sspace), VPTree)

    def test_explicit_kind(self, vspace):
        assert isinstance(build_index(vspace, kind="rtree"), RTree)

    def test_vector_only_kind_rejected_for_objects(self, sspace):
        with pytest.raises(TypeError, match="requires vector data"):
            build_index(sspace, kind="kdtree")

    def test_unknown_kind(self, vspace):
        with pytest.raises(ValueError, match="unknown index kind"):
            build_index(vspace, kind="btree")
