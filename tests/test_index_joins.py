"""Tests for repro.index.joins: the three similarity joins and the
Sec. IV-G speed-up principles."""

import numpy as np
import pytest

from repro.index import (
    UNKNOWN_COUNT,
    BruteForceIndex,
    build_index,
    join_counts,
    self_join_counts,
    self_join_pairs,
)
from repro.metric.base import MetricSpace


@pytest.fixture(scope="module")
def space(small_points):
    return MetricSpace(small_points)


@pytest.fixture(scope="module")
def radii(space):
    diameter = BruteForceIndex(space).diameter_estimate()
    return np.array([diameter / 2**k for k in range(7, -1, -1)])


class TestSelfJoinCounts:
    def test_exhaustive_matches_manual(self, space, radii):
        idx = build_index(space, kind="brute")
        counts = self_join_counts(idx, radii, sparse_focused=False, small_radii_only=False)
        dm = space.distance_matrix()
        for e, r in enumerate(radii):
            manual = (dm <= r).sum(axis=1)
            assert np.array_equal(counts[:, e], manual)

    def test_counts_nondecreasing_in_radius(self, space, radii):
        idx = build_index(space, kind="brute")
        counts = self_join_counts(idx, radii, sparse_focused=False, small_radii_only=False)
        assert (np.diff(counts, axis=1) >= 0).all()

    def test_sparse_focused_agrees_where_known(self, space, radii):
        idx = build_index(space, kind="brute")
        c = 10
        full = self_join_counts(idx, radii, sparse_focused=False, small_radii_only=False)
        sparse = self_join_counts(idx, radii, max_cardinality=c, small_radii_only=False)
        known = sparse != UNKNOWN_COUNT
        assert np.array_equal(sparse[known], full[known])

    def test_sparse_focused_skips_only_after_exceeding_c(self, space, radii):
        idx = build_index(space, kind="brute")
        c = 10
        sparse = self_join_counts(idx, radii, max_cardinality=c, small_radii_only=False)
        n, a = sparse.shape
        for i in range(n):
            for e in range(1, a):
                if sparse[i, e] == UNKNOWN_COUNT:
                    # The previous known count must exceed c.
                    prev = sparse[i, e - 1]
                    assert prev == UNKNOWN_COUNT or prev > c

    def test_small_radii_only_fills_last_column_with_n(self, space, radii):
        idx = build_index(space, kind="brute")
        counts = self_join_counts(idx, radii, sparse_focused=False)
        assert (counts[:, -1] == len(space)).all()

    def test_self_always_counted(self, space, radii):
        idx = build_index(space, kind="brute")
        counts = self_join_counts(idx, radii, sparse_focused=False, small_radii_only=False)
        assert (counts[:, 0] >= 1).all()

    def test_rejects_nonincreasing_radii(self, space):
        idx = build_index(space, kind="brute")
        with pytest.raises(ValueError, match="strictly increasing"):
            self_join_counts(idx, [1.0, 1.0, 2.0])

    def test_rejects_single_radius(self, space):
        idx = build_index(space, kind="brute")
        with pytest.raises(ValueError, match="two radii"):
            self_join_counts(idx, [1.0])

    @pytest.mark.parametrize("kind", ["brute", "vptree", "ckdtree", "mtree"])
    def test_index_kinds_agree(self, space, radii, kind):
        ref = self_join_counts(
            build_index(space, kind="brute"), radii, max_cardinality=12
        )
        got = self_join_counts(build_index(space, kind=kind), radii, max_cardinality=12)
        assert np.array_equal(ref, got)


class TestJoinCounts:
    def test_counts_against_other_set(self, space):
        inlier_ids = np.arange(0, 40)
        query_ids = np.arange(40, 60)
        idx = build_index(space, inlier_ids, kind="brute")
        r = 2.0
        got = join_counts(idx, query_ids, r)
        dm = space.distances_among(query_ids, inlier_ids)
        assert np.array_equal(got, (dm <= r).sum(axis=1))

    def test_disjoint_sets_no_self_count(self, space):
        idx = build_index(space, np.array([0]), kind="brute")
        got = join_counts(idx, np.array([1]), 1e-12)
        assert got[0] in (0, 1)  # 1 only if points 0 and 1 coincide


class TestSelfJoinPairs:
    def test_pairs_are_within_radius_and_complete(self, space):
        ids = np.arange(0, 30)
        idx = build_index(space, ids, kind="vptree")
        r = 1.5
        pairs = set(self_join_pairs(idx, r))
        dm = space.distance_matrix()
        for i in ids:
            for j in ids:
                if i < j:
                    assert ((i, j) in pairs) == (dm[i, j] <= r)
