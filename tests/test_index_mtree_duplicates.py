"""Regression: M-tree splits under heavy duplication.

With many identical elements the mM_RAD promotion can pick two pivots
at distance 0; the generalized-hyperplane partition then sends every
entry to one side.  Before the balanced-split fallback this produced an
empty internal node and crashed subtree choice on the next insert.
"""

import numpy as np
import pytest

from repro.index import BruteForceIndex, MTree, SlimTree
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein


def _duplicate_heavy_strings(n: int = 300) -> MetricSpace:
    rng = np.random.default_rng(0)
    syllables = ["son", "ton", "ley", "field", "smith", "er", "man", "well", "ford"]
    words = ["".join(rng.choice(syllables, size=rng.integers(2, 4))) for _ in range(n)]
    return MetricSpace(words, levenshtein)


class TestMTreeDuplicates:
    def test_builds_and_counts_on_duplicate_heavy_strings(self):
        space = _duplicate_heavy_strings()
        tree = MTree(space, capacity=4)  # small capacity forces many splits
        brute = BruteForceIndex(space)
        q = np.arange(len(space))
        for r in (0.0, 1.0, 3.0):
            assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))

    def test_all_identical_elements(self):
        space = MetricSpace(["same"] * 100, levenshtein)
        tree = MTree(space, capacity=4)
        assert tree.count_within([0], 0.0)[0] == 100

    def test_two_values_only(self):
        space = MetricSpace(["aaaa", "bbbb"] * 60, levenshtein)
        tree = MTree(space, capacity=4)
        brute = BruteForceIndex(space)
        q = np.arange(len(space))
        for r in (0.0, 3.9, 4.0):
            assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))

    def test_vector_duplicates(self):
        rng = np.random.default_rng(1)
        X = np.repeat(rng.normal(size=(10, 2)), 30, axis=0)
        space = MetricSpace(X)
        tree = MTree(space, capacity=4)
        brute = BruteForceIndex(space)
        q = np.arange(len(space))
        r = 0.5
        assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))


class TestSlimTreeDuplicates:
    @pytest.mark.parametrize("words", [
        ["same"] * 80,
        ["aaaa", "bbbb"] * 40,
    ])
    def test_slimtree_survives_duplicates(self, words):
        space = MetricSpace(words, levenshtein)
        tree = SlimTree(space)
        brute = BruteForceIndex(space)
        q = np.arange(len(space))
        for r in (0.0, 4.0):
            assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))
