"""Structure-specific tests for CoverTree, BallTree, and LAESAIndex.

Cross-index *agreement* with the brute-force oracle lives in
test_index_agreement.py; here we check the invariants each structure
promises beyond correct counts (cover-tree scales, ball-tree balance,
LAESA pivot spread and bound-filtering behaviour).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BallTree, BruteForceIndex, CoverTree, LAESAIndex, build_index
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(7)
    X = np.vstack(
        [
            rng.normal(0, 1, (120, 3)),
            rng.normal(15, 1, (80, 3)),
            rng.normal([0, 30, 0], 0.5, (40, 3)),
        ]
    )
    return MetricSpace(X)


@pytest.fixture(scope="module")
def words():
    rng = np.random.default_rng(11)
    alphabet = list("ACGT")
    seqs = ["".join(rng.choice(alphabet, size=rng.integers(3, 12))) for _ in range(60)]
    return MetricSpace(seqs, levenshtein)


class TestCoverTree:
    def test_covering_invariant(self, blobs):
        """Every node's members lie within its covering radius <= base**scale."""
        tree = CoverTree(blobs, leaf_size=4, build="insert")
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert node.radius <= tree.base ** node.scale + 1e-9
            stack.extend(node.children)

    def test_child_separation(self, blobs):
        """Sibling centers are separated by more than base**(scale-1)."""
        tree = CoverTree(blobs, leaf_size=4, build="insert")
        stack = [tree.root]
        while stack:
            node = stack.pop()
            centers = [ch.center for ch in node.children]
            for a in range(len(centers)):
                for b in range(a + 1, len(centers)):
                    d = blobs.distance(centers[a], centers[b])
                    assert d > tree.base ** (node.scale - 1) - 1e-9
            stack.extend(node.children)

    def test_nesting_first_child_keeps_center(self, blobs):
        tree = CoverTree(blobs, leaf_size=4, build="insert")
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.children:
                assert node.children[0].center == node.center
            stack.extend(node.children)

    def test_sizes_partition_members(self, blobs):
        tree = CoverTree(blobs, leaf_size=4, build="insert")
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.children:
                assert sum(ch.size for ch in node.children) == node.size
            stack.extend(node.children)
        assert tree.root.size == len(blobs)

    def test_singleton_space(self):
        space = MetricSpace(np.array([[1.0, 2.0]]))
        tree = CoverTree(space)
        assert tree.count_within([0], 0.0)[0] == 1
        assert tree.diameter_estimate() == 0.0

    def test_identical_points_become_leaf(self):
        space = MetricSpace(np.zeros((50, 2)))
        tree = CoverTree(space, leaf_size=4, build="insert")
        assert tree.root.bucket is not None  # radius 0 short-circuits
        assert tree.count_within([0], 0.0)[0] == 50

    def test_max_depth_and_node_count(self, blobs):
        tree = CoverTree(blobs, leaf_size=8)
        assert tree.max_depth() >= 2
        assert tree.node_count() >= 3

    def test_invalid_params(self, blobs):
        with pytest.raises(ValueError, match="leaf_size"):
            CoverTree(blobs, leaf_size=0)
        with pytest.raises(ValueError, match="base"):
            CoverTree(blobs, base=1.0)

    def test_base_three_still_correct(self, blobs):
        brute = BruteForceIndex(blobs)
        tree = CoverTree(blobs, leaf_size=4, base=3.0)
        q = np.arange(len(blobs))
        r = 0.2 * brute.diameter_estimate()
        assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))

    def test_works_on_strings(self, words):
        brute = BruteForceIndex(words)
        tree = CoverTree(words, leaf_size=4)
        q = np.arange(len(words))
        for r in (1.0, 3.0, 7.0):
            assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))


class TestBallTree:
    def test_ball_invariant(self, blobs):
        """Members of every node lie within the node's radius of its pivot."""
        flat = BallTree(blobs, leaf_size=4).flat
        for i in range(flat.n_nodes):
            members = flat.elems[flat.elem_lo[i] : flat.elem_hi[i]]
            d = blobs.distances(int(flat.center[i]), members)
            assert d.max() <= flat.radius[i] + 1e-9

    def test_split_is_binary_partition(self, blobs):
        """Children partition their parent's member slice, sizes included."""
        flat = BallTree(blobs, leaf_size=4).flat
        for i in range(flat.n_nodes):
            if flat.is_leaf(i):
                continue
            left, right = int(flat.child_lo[i]), int(flat.child_lo[i]) + 1
            assert int(flat.child_hi[i]) - int(flat.child_lo[i]) == 2
            assert flat.size[left] + flat.size[right] == flat.size[i]
            assert flat.elem_lo[left] == flat.elem_lo[i]
            assert flat.elem_hi[left] == flat.elem_lo[right]
            assert flat.elem_hi[right] == flat.elem_hi[i]

    def test_leaf_sizes_respect_cap_or_ties(self, blobs):
        tree = BallTree(blobs, leaf_size=8)
        assert all(s >= 1 for s in tree.leaf_sizes())
        assert sum(tree.leaf_sizes()) == len(blobs)

    def test_permutation_covers_all_elements(self, blobs):
        flat = BallTree(blobs, leaf_size=4).flat
        assert sorted(flat.elems.tolist()) == list(range(len(blobs)))

    def test_duplicates_fall_back_to_leaf(self):
        space = MetricSpace(np.ones((30, 2)))
        tree = BallTree(space, leaf_size=2)
        assert tree.flat.n_nodes == 1 and tree.flat.is_leaf(0)  # radius 0 short-circuits
        assert tree.count_within([0], 0.0)[0] == 30

    def test_invalid_leaf_size(self, blobs):
        with pytest.raises(ValueError, match="leaf_size"):
            BallTree(blobs, leaf_size=0)

    def test_works_on_strings(self, words):
        brute = BruteForceIndex(words)
        tree = BallTree(words, leaf_size=4)
        q = np.arange(len(words))
        for r in (1.0, 2.0, 5.0):
            assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))


class TestLAESA:
    def test_pivots_are_spread(self, blobs):
        idx = LAESAIndex(blobs, n_pivots=5)
        assert idx.pivots.size == 5
        # Greedy farthest-point pivots are pairwise distinct elements.
        assert len(set(int(p) for p in idx.pivots)) == 5

    def test_pivot_count_capped_at_n(self):
        space = MetricSpace(np.random.default_rng(0).normal(size=(6, 2)))
        idx = LAESAIndex(space, n_pivots=100)
        assert idx.pivots.size <= 6

    def test_duplicate_data_stops_pivot_selection(self):
        space = MetricSpace(np.zeros((10, 2)))
        idx = LAESAIndex(space, n_pivots=4)
        assert idx.pivots.size == 1  # all farther candidates coincide

    def test_bounds_decide_most_elements(self, blobs):
        """On clustered data the pivot bounds should resolve the bulk of
        the elements without metric evaluations."""
        idx = LAESAIndex(blobs, n_pivots=8)
        stats = idx.filtering_stats(0, radius=3.0)
        n = len(blobs)
        assert stats["excluded"] + stats["included"] + stats["evaluated"] == n
        assert stats["evaluated"] < n  # bounds did some work

    def test_out_of_dataset_query_distances(self, blobs):
        idx = LAESAIndex(blobs, n_pivots=4)
        # Query by an id not indexed: restrict the index to half the space
        half = np.arange(0, len(blobs), 2)
        sub = LAESAIndex(blobs, half, n_pivots=4)
        brute = BruteForceIndex(blobs, half)
        queries = np.arange(1, len(blobs), 2)  # none of these are indexed
        r = 2.5
        assert np.array_equal(sub.count_within(queries, r), brute.count_within(queries, r))

    def test_invalid_pivot_count(self, blobs):
        with pytest.raises(ValueError, match="n_pivots"):
            LAESAIndex(blobs, n_pivots=0)

    def test_works_on_strings(self, words):
        brute = BruteForceIndex(words)
        idx = LAESAIndex(words, n_pivots=6)
        q = np.arange(len(words))
        for r in (1.0, 4.0):
            assert np.array_equal(idx.count_within(q, r), brute.count_within(q, r))


class TestFactoryIntegration:
    @pytest.mark.parametrize("kind,cls", [
        ("covertree", CoverTree),
        ("balltree", BallTree),
        ("laesa", LAESAIndex),
    ])
    def test_factory_builds_new_kinds(self, blobs, kind, cls):
        assert isinstance(build_index(blobs, kind=kind), cls)

    @pytest.mark.parametrize("kind", ["covertree", "balltree", "laesa"])
    def test_mccatch_runs_with_new_indexes(self, kind):
        from repro import McCatch

        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (500, 2)), [[8.0, 8.0], [8.1, 8.0]]])
        result = McCatch(index=kind).fit(X)
        # The planted pair must be gelled into one nonsingleton mc.  Its
        # exact rank may shift between index kinds (the diameter estimate,
        # and so the radius ladder, differs slightly), but membership and
        # grouping are invariant.
        pair = [m for m in result.microclusters if set(m.indices) == {500, 501}]
        assert len(pair) == 1
        assert pair[0].cardinality == 2
        assert pair[0].bridge_length > 1.0


class TestPropertyBased:
    @given(seed=st.integers(0, 500), n=st.integers(5, 60), leaf=st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_covertree_counts_match_brute(self, seed, n, leaf):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 2)) * rng.uniform(0.1, 20)
        space = MetricSpace(X)
        brute = BruteForceIndex(space)
        r = 0.3 * max(brute.diameter_estimate(), 1e-9)
        tree = CoverTree(space, leaf_size=leaf)
        q = np.arange(n)
        assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))

    @given(seed=st.integers(0, 500), n=st.integers(5, 60), k=st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_laesa_counts_match_brute(self, seed, n, k):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        space = MetricSpace(X)
        brute = BruteForceIndex(space)
        r = float(rng.uniform(0.1, 3.0))
        idx = LAESAIndex(space, n_pivots=k)
        q = np.arange(n)
        assert np.array_equal(idx.count_within(q, r), brute.count_within(q, r))

    @given(seed=st.integers(0, 500), n=st.integers(5, 60))
    @settings(max_examples=25, deadline=None)
    def test_balltree_counts_match_brute(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 2))
        space = MetricSpace(X)
        brute = BruteForceIndex(space)
        r = float(rng.uniform(0.05, 2.5))
        tree = BallTree(space, leaf_size=4)
        q = np.arange(n)
        assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))
