"""Fitted-index and fitted-model persistence round trips.

A loaded index must answer every query identically to the freshly
built one — counts across the whole boundary-radius ladder, pairs,
diameter — and a loaded McCatch model must score a held-out batch
identically.
"""

import numpy as np
import pytest

from repro import McCatch, McCatchModel
from repro.engine import BatchQueryEngine
from repro.index import (
    BallTree,
    BruteForceIndex,
    CoverTree,
    FrozenIndex,
    MTree,
    SlimTree,
    VPTree,
)
from repro.io import load_index, load_model, save_index, save_model
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein

FLAT_KINDS = [VPTree, BallTree, CoverTree, MTree, SlimTree]


@pytest.fixture(scope="module")
def vspace():
    rng = np.random.default_rng(3)
    X = np.vstack(
        [rng.normal(0, 1, (120, 3)), np.zeros((4, 3)), [[9.0, 9.0, 9.0], [9.1, 9.0, 9.0]]]
    )
    return MetricSpace(X)


@pytest.fixture(scope="module")
def sspace():
    rng = np.random.default_rng(4)
    words = ["".join(rng.choice(list("ABCDE"), size=rng.integers(2, 8))) for _ in range(40)]
    return MetricSpace(words, levenshtein)


def ladder(space):
    d = space.distances(0, np.arange(min(len(space), 10)))
    ties = sorted(float(v) for v in d if v > 0)[:3]
    diam = float(space.distances(0, np.arange(len(space))).max())
    return np.sort(np.array([0.0] + ties + [0.4 * diam, diam], dtype=np.float64))


@pytest.mark.parametrize("cls", FLAT_KINDS)
class TestIndexRoundTrip:
    def test_vector_counts_identical(self, cls, vspace, tmp_path):
        idx = cls(vspace)
        back = load_index(save_index(idx, tmp_path / "idx.npz"))
        assert isinstance(back, FrozenIndex)
        radii = ladder(vspace)
        q = np.arange(len(vspace))
        assert np.array_equal(
            back.count_within_many(q, radii), idx.count_within_many(q, radii)
        )
        for r in radii:
            assert np.array_equal(
                back.count_within(q, float(r)), idx.count_within(q, float(r))
            )

    def test_vector_pairs_and_diameter(self, cls, vspace, tmp_path):
        idx = cls(vspace)
        back = load_index(save_index(idx, tmp_path / "idx.npz"))
        r = 0.2 * idx.diameter_estimate()
        assert back.pairs_within(r) == idx.pairs_within(r)
        assert back.diameter_estimate() == idx.diameter_estimate()

    def test_object_space_needs_space_at_load(self, cls, sspace, tmp_path):
        idx = cls(sspace)
        path = save_index(idx, tmp_path / "idx.npz")
        with pytest.raises(ValueError, match="saved without its data"):
            load_index(path)
        back = load_index(path, sspace)
        radii = ladder(sspace)
        q = np.arange(len(sspace))
        assert np.array_equal(
            back.count_within_many(q, radii), idx.count_within_many(q, radii)
        )

    def test_subset_index_round_trip(self, cls, vspace, tmp_path):
        ids = np.arange(0, len(vspace), 2)
        idx = cls(vspace, ids)
        back = load_index(save_index(idx, tmp_path / "idx.npz"))
        queries = np.arange(1, len(vspace), 3)
        radii = ladder(vspace)
        assert np.array_equal(
            back.count_within_many(queries, radii), idx.count_within_many(queries, radii)
        )

    def test_loaded_index_drives_engine(self, cls, vspace, tmp_path):
        idx = cls(vspace)
        back = load_index(save_index(idx, tmp_path / "idx.npz"))
        radii = np.sort(np.append(ladder(vspace), 1e-9))[1:]  # strictly increasing
        radii = np.unique(radii)
        if radii.size < 2:  # pragma: no cover - defensive
            pytest.skip("degenerate ladder")
        got = BatchQueryEngine(back).self_join_counts(radii, max_cardinality=13)
        expected = BatchQueryEngine(idx).self_join_counts(radii, max_cardinality=13)
        assert np.array_equal(got, expected)


class TestIndexSaveErrors:
    def test_non_flat_index_rejected(self, vspace, tmp_path):
        with pytest.raises(TypeError, match="no FlatTree storage"):
            save_index(BruteForceIndex(vspace), tmp_path / "idx.npz")

    def test_wrong_space_rejected(self, sspace, tmp_path):
        idx = VPTree(sspace)
        path = save_index(idx, tmp_path / "idx.npz")
        tiny = MetricSpace(["A", "B"], levenshtein)
        with pytest.raises(ValueError, match="wrong space"):
            load_index(path, tiny)

    def test_model_file_rejected_as_index(self, vspace, tmp_path):
        model = McCatch(index="vptree").fit_model(np.asarray(vspace.data))
        path = save_model(model, tmp_path / "m.npz")
        with pytest.raises(ValueError, match="unsupported index format"):
            load_index(path)


class TestModelRoundTrip:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (300, 2)), [[8.0, 8.0], [8.1, 8.0]]])
        held = np.vstack([rng.normal(0, 1, (25, 2)), [[7.9, 8.0], [30.0, 30.0]]])
        return X, held, McCatch(index="vptree").fit_model(X)

    def test_scores_held_out_identically(self, fitted, tmp_path):
        X, held, model = fitted
        loaded = load_model(save_model(model, tmp_path / "m.npz"))
        before, after = model.score_batch(held), loaded.score_batch(held)
        assert np.array_equal(before.scores, after.scores)
        assert np.array_equal(before.flagged, after.flagged)

    def test_result_round_trips(self, fitted, tmp_path):
        _, _, model = fitted
        loaded = McCatchModel.load(model.save(tmp_path / "m.npz"))
        assert loaded.n == model.n
        assert np.array_equal(loaded.result.point_scores, model.result.point_scores)
        assert [tuple(m.indices) for m in loaded.result.microclusters] == [
            tuple(m.indices) for m in model.result.microclusters
        ]
        assert loaded.result.cutoff.value == model.result.cutoff.value

    def test_loaded_index_counts_match(self, fitted, tmp_path):
        X, _, model = fitted
        loaded = load_model(save_model(model, tmp_path / "m.npz"))
        q = np.arange(len(X))
        radii = model.result.oracle.radii
        assert np.array_equal(
            loaded.index.count_within_many(q, radii),
            model.index.count_within_many(q, radii),
        )

    def test_flags_the_planted_outlier(self, fitted):
        _, held, model = fitted
        batch = model.score_batch(held)
        assert 26 in set(batch.flagged.tolist())  # the far [30, 30] row

    def test_every_flat_index_kind_saves(self, fitted, tmp_path):
        X, held, _ = fitted
        for kind in ("balltree", "covertree", "mtree", "slimtree"):
            model = McCatch(index=kind).fit_model(X)
            loaded = load_model(save_model(model, tmp_path / f"m_{kind}.npz"))
            assert np.array_equal(
                loaded.score_batch(held).scores, model.score_batch(held).scores
            )

    def test_object_space_model_rejected(self, tmp_path):
        words = ["SMITH", "SMYTH", "SMITT", "JONES"] * 10 + ["XQWZKJY"]
        model = McCatch(index="vptree").fit_model(words, levenshtein)
        with pytest.raises(TypeError, match="vector-space"):
            save_model(model, tmp_path / "m.npz")

    def test_non_flat_index_model_rejected(self, tmp_path):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(80, 2))
        model = McCatch(index="ckdtree").fit_model(X)
        with pytest.raises(TypeError, match="no FlatTree storage"):
            save_model(model, tmp_path / "m.npz")

    def test_streaming_scorer_matches_model_scorer(self, fitted):
        """The streaming provisional scorer is score_batch — same numbers."""
        from repro import StreamingMcCatch

        X, held, model = fitted
        stream = StreamingMcCatch(McCatch(index="vptree"), min_fit_size=32)
        stream.update(X)
        update = stream.update(held)
        assert np.array_equal(update.provisional_scores, model.score_batch(held).scores)
