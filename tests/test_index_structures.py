"""Structure-specific index tests: M-tree invariants, Slim-tree split,
R-tree packing, VP-tree determinism, base-class validation."""

import numpy as np
import pytest

from repro.index import BruteForceIndex, MTree, RTree, SlimTree, VPTree
from repro.index.mtree import _Node
from repro.metric.base import MetricSpace


def _check_covering(tree: MTree, node: _Node, space) -> None:
    """Every member of a routing ball lies within its covering radius."""
    for e in node.entries:
        if e.subtree is None:
            continue
        members = _collect(e.subtree)
        for m in members:
            assert space.distance(m, e.pivot_id) <= e.radius + 1e-9
        assert e.size == len(members)
        _check_covering(tree, e.subtree, space)


def _collect(node: _Node) -> list[int]:
    out = []
    for e in node.entries:
        if e.subtree is None:
            out.append(e.pivot_id)
        else:
            out.extend(_collect(e.subtree))
    return out


class TestMTreeInvariants:
    @pytest.mark.parametrize("capacity", [4, 8, 16])
    def test_covering_radii_and_sizes(self, small_points, capacity):
        space = MetricSpace(small_points)
        tree = MTree(space, capacity=capacity, build="insert")
        _check_covering(tree, tree.root, space)

    def test_all_elements_reachable(self, small_points):
        space = MetricSpace(small_points)
        tree = MTree(space, capacity=4, build="insert")
        if tree.root.is_leaf:
            members = [e.pivot_id for e in tree.root.entries]
        else:
            members = _collect(tree.root)
        assert sorted(members) == list(range(len(space)))

    def test_node_capacity_respected(self, small_points):
        space = MetricSpace(small_points)
        tree = MTree(space, capacity=5, build="insert")
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node.entries) <= 5
            for e in node.entries:
                if e.subtree is not None:
                    stack.append(e.subtree)

    def test_height_grows_with_data(self):
        rng = np.random.default_rng(0)
        small = MTree(MetricSpace(rng.normal(size=(10, 2))), capacity=4)
        large = MTree(MetricSpace(rng.normal(size=(300, 2))), capacity=4)
        assert large.height() > small.height()

    def test_distance_calls_tracked(self, small_points):
        tree = MTree(MetricSpace(small_points), capacity=8, build="insert")
        before = tree.distance_calls
        tree.count_within(np.array([0]), 1.0)
        assert tree.distance_calls > before

    def test_capacity_validation(self, small_points):
        with pytest.raises(ValueError, match="capacity"):
            MTree(MetricSpace(small_points), capacity=2)


class TestSlimTree:
    def test_covering_invariant_after_slim_down(self, small_points):
        space = MetricSpace(small_points)
        tree = SlimTree(space, capacity=4, slim_down=True, build="insert")
        _check_covering(tree, tree.root, space)

    def test_counts_still_exact_after_slim_down(self, small_points):
        space = MetricSpace(small_points)
        tree = SlimTree(space, capacity=4, slim_down=True)
        brute = BruteForceIndex(space)
        q = np.arange(len(space))
        r = 0.25 * brute.diameter_estimate()
        assert np.array_equal(tree.count_within(q, r), brute.count_within(q, r))

    def test_fat_factor_in_unit_interval(self, small_points):
        tree = SlimTree(MetricSpace(small_points), capacity=4)
        assert 0.0 <= tree.fat_factor() <= 1.0

    def test_slim_down_never_loses_points(self, small_points):
        space = MetricSpace(small_points)
        tree = SlimTree(space, capacity=4, slim_down=True)
        assert int(tree.count_within(np.array([0]), 1e9)[0]) == len(space)


class TestRTree:
    def test_leaf_capacity(self, small_points):
        tree = RTree(MetricSpace(small_points), capacity=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.bucket is not None:
                assert node.bucket.size <= 8
            else:
                assert len(node.children) <= 8
                stack.extend(node.children)

    def test_mbrs_contain_children(self, small_points):
        space = MetricSpace(small_points)
        tree = RTree(space, capacity=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.bucket is not None:
                pts = space.data[node.bucket]
                assert (pts >= node.lo - 1e-12).all()
                assert (pts <= node.hi + 1e-12).all()
            else:
                for child in node.children:
                    assert (child.lo >= node.lo - 1e-12).all()
                    assert (child.hi <= node.hi + 1e-12).all()
                stack.extend(node.children)

    def test_sizes_consistent(self, small_points):
        tree = RTree(MetricSpace(small_points), capacity=8)
        assert tree.root.size == len(small_points)


class TestVPTree:
    def test_deterministic_by_default(self, small_points):
        space = MetricSpace(small_points)
        t1 = VPTree(space)
        t2 = VPTree(space)
        q = np.arange(len(space))
        assert np.array_equal(t1.count_within(q, 2.0), t2.count_within(q, 2.0))

    def test_single_element(self):
        space = MetricSpace(np.array([[1.0, 2.0]]))
        tree = VPTree(space)
        assert tree.diameter_estimate() == 0.0
        assert list(tree.count_within(np.array([0]), 0.5)) == [1]

    def test_leaf_size_validation(self, small_points):
        with pytest.raises(ValueError, match="leaf_size"):
            VPTree(MetricSpace(small_points), leaf_size=0)

    def test_duplicate_heavy_data(self):
        # Degenerate medians (many ties) must not break construction.
        X = np.repeat(np.array([[0.0, 0.0], [1.0, 1.0]]), 25, axis=0)
        space = MetricSpace(X)
        tree = VPTree(space, leaf_size=4)
        counts = tree.count_within(np.arange(50), 0.1)
        assert (counts == 25).all()


class TestBase:
    def test_empty_ids_rejected(self, small_points):
        with pytest.raises(ValueError, match="zero elements"):
            BruteForceIndex(MetricSpace(small_points), np.array([], dtype=np.intp))

    def test_two_scan_diameter_reasonable(self, small_points):
        space = MetricSpace(small_points)
        est = BruteForceIndex(space).diameter_estimate()
        true = space.distance_matrix().max()
        assert 0.5 * true <= est <= true + 1e-9
