"""CountingMetricSpace: accounting correctness, and quantitative checks
of the Sec. IV-G join principles (they must *reduce distance calls*,
not just wall-clock time)."""

import numpy as np
import pytest

from repro.core.oracle import build_oracle_plot
from repro.core.radii import define_radii
from repro.index import BruteForceIndex, VPTree
from repro.metric.base import MetricSpace
from repro.metric.instrumentation import CountingMetricSpace
from repro.metric.strings import levenshtein


@pytest.fixture()
def counted_vectors():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 1, (300, 2)), [[9.0, 9.0], [9.1, 9.0]]])
    return CountingMetricSpace(MetricSpace(X))


class TestAccounting:
    def test_scalar_calls_counted(self, counted_vectors):
        counted_vectors.counter.reset()
        counted_vectors.distance(0, 1)
        counted_vectors.distance(2, 3)
        assert counted_vectors.counter.scalar_calls == 2
        assert counted_vectors.counter.total == 2

    def test_bulk_pairs_counted(self, counted_vectors):
        counted_vectors.counter.reset()
        counted_vectors.distances(0, np.arange(50))
        assert counted_vectors.counter.bulk_pairs == 50
        assert counted_vectors.counter.bulk_calls == 1

    def test_distances_among_counts_matrix(self, counted_vectors):
        counted_vectors.counter.reset()
        counted_vectors.distances_among(np.arange(10), np.arange(20))
        assert counted_vectors.counter.bulk_pairs == 200

    def test_values_identical_to_inner(self):
        rng = np.random.default_rng(1)
        inner = MetricSpace(rng.normal(size=(40, 3)))
        proxy = CountingMetricSpace(inner)
        assert np.array_equal(
            proxy.distances(0, np.arange(40)), inner.distances(0, np.arange(40))
        )
        assert proxy.distance(3, 7) == inner.distance(3, 7)

    def test_reset(self, counted_vectors):
        counted_vectors.distance(0, 1)
        counted_vectors.counter.reset()
        assert counted_vectors.counter.total == 0

    def test_subset_shares_counter(self, counted_vectors):
        counted_vectors.counter.reset()
        sub = counted_vectors.subset(np.arange(10))
        sub.distance(0, 1)
        assert counted_vectors.counter.total == 1

    def test_object_space_wrapping(self):
        words = ["abc", "abd", "xyz", "xyw"] * 5
        proxy = CountingMetricSpace(MetricSpace(words, levenshtein))
        proxy.distances(0, np.arange(20))
        assert proxy.counter.bulk_pairs == 20

    def test_repr_mentions_total(self, counted_vectors):
        counted_vectors.counter.reset()
        counted_vectors.distance(0, 1)
        assert "total=1" in repr(counted_vectors.counter)


class TestJoinPrinciplesQuantified:
    def _oracle_calls(self, space: CountingMetricSpace, *, sparse_focused: bool) -> int:
        space.counter.reset()
        tree = VPTree(space)
        radii = define_radii(tree, 15)
        build_oracle_plot(
            tree,
            radii,
            max_slope=0.1,
            max_cardinality=max(1, int(0.1 * len(space))),
            sparse_focused=sparse_focused,
        )
        return space.counter.total

    def test_sparse_focused_reduces_distance_calls(self):
        """The sparse-focused principle must cut real distance traffic."""
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (400, 2))
        sparse = self._oracle_calls(CountingMetricSpace(MetricSpace(X)), sparse_focused=True)
        dense = self._oracle_calls(CountingMetricSpace(MetricSpace(X)), sparse_focused=False)
        assert sparse < dense

    def test_vptree_beats_bruteforce_on_clustered_data(self):
        """The using-index principle: tree pruning pays on clustered data."""
        rng = np.random.default_rng(3)
        X = np.vstack([rng.normal(c, 0.3, (150, 2)) for c in ((0, 0), (20, 0), (0, 20))])
        radius = 1.0

        brute_space = CountingMetricSpace(MetricSpace(X))
        BruteForceIndex(brute_space).count_within(np.arange(len(X)), radius)
        brute_calls = brute_space.counter.total

        vp_space = CountingMetricSpace(MetricSpace(X))
        VPTree(vp_space).count_within(np.arange(len(X)), radius)
        vp_calls = vp_space.counter.total

        assert vp_calls < brute_calls

    def test_mccatch_runs_on_counting_space(self):
        """The proxy is a drop-in MetricSpace for the full pipeline."""
        from repro import McCatch

        rng = np.random.default_rng(4)
        X = np.vstack([rng.normal(0, 1, (200, 2)), [[9.0, 9.0]]])
        space = CountingMetricSpace(MetricSpace(X))
        result = McCatch(index="vptree").fit(space)
        assert 200 in set(map(int, result.outlier_indices))
        assert space.counter.total > 0
