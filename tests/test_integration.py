"""Integration tests: the paper's end-to-end stories at reduced scale."""

import numpy as np
import pytest

from repro import McCatch
from repro.datasets import load, make_http_like, make_shanghai_tiles, make_volcano_tiles
from repro.eval import auroc


class TestHttpStory:
    """Fig. 8(ii): the DoS microcluster in network logs."""

    @pytest.fixture(scope="class")
    def result(self):
        X, y = make_http_like(scale=0.1, random_state=0)
        return X, y, McCatch().fit(X)

    def test_high_auroc(self, result):
        X, y, res = result
        assert auroc(y, res.point_scores) > 0.95

    def test_dos_microcluster_found_as_group(self, result):
        X, y, res = result
        n_in = int((y == 0).sum())
        dos = set(range(n_in, n_in + 30))  # the 30-connection coalition
        covering = [m for m in res.microclusters if dos <= set(map(int, m.indices))]
        assert len(covering) == 1
        assert covering[0].cardinality <= 35  # tight group, not a blob


class TestSatelliteStories:
    """Figs. 1(i) and 8(i): roof pairs and the summit snow cluster."""

    def test_shanghai_roof_pairs(self):
        tiles = make_shanghai_tiles(random_state=0)
        res = McCatch().fit(tiles.rgb)
        red_pair = set(np.nonzero(tiles.labels == 2)[0].tolist())
        blue_pair = set(np.nonzero(tiles.labels == 3)[0].tolist())
        found_pairs = [set(map(int, m.indices)) for m in res.nonsingleton()]
        assert red_pair in found_pairs
        assert blue_pair in found_pairs

    def test_shanghai_scattered_outliers_are_singletons(self):
        tiles = make_shanghai_tiles(random_state=0)
        res = McCatch().fit(tiles.rgb)
        scattered = np.nonzero(tiles.labels == 1)[0]
        labels = res.labels
        for s in scattered:
            rank = labels[s]
            assert rank >= 0
            assert res.microclusters[rank].is_singleton

    def test_volcano_snow_cluster(self):
        tiles = make_volcano_tiles(random_state=0)
        res = McCatch().fit(tiles.rgb)
        snow = set(np.nonzero(tiles.labels == 2)[0].tolist())
        covering = [m for m in res.nonsingleton() if snow <= set(map(int, m.indices))]
        assert len(covering) == 1


class TestNondimensionalStories:
    """Fig. 1(ii)-(iii): names and skeletons."""

    def test_last_names_auroc_comparable_to_paper(self):
        # Paper reports 0.75 on the real data; the stand-in is cleaner.
        ds = load("last_names", scale=0.3, random_state=0)
        res = McCatch().fit(ds.data, ds.metric)
        assert auroc(ds.labels, res.point_scores) >= 0.75

    def test_skeletons_perfect_auroc(self):
        # Paper reports a perfect AUROC of 1 on Skeletons.
        ds = load("skeletons", scale=0.15, random_state=0)
        res = McCatch().fit(ds.data, ds.metric)
        assert auroc(ds.labels, res.point_scores) == 1.0

    def test_fingerprints_partials_detected(self):
        ds = load("fingerprints", scale=0.15, random_state=0)
        res = McCatch().fit(ds.data, ds.metric)
        assert auroc(ds.labels, res.point_scores) > 0.9


class TestBenchmarkGrid:
    @pytest.mark.parametrize("name", ["mammography", "thyroid", "wine", "glass"])
    def test_small_benchmarks_beat_chance(self, name):
        ds = load(name, scale=1.0 if name in ("wine", "glass") else 0.3, random_state=0)
        res = McCatch().fit(ds.data)
        assert auroc(ds.labels, res.point_scores) > 0.7
