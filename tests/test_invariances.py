"""Property tests of McCatch's structural invariances.

The paper's construction depends on the data only through distances, so
the detector must be invariant to rigid motions, equivariant under
permutation, and deterministic.  Scale changes move the radius ladder
proportionally, so detections are scale-invariant too.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import McCatch


def _planted(seed: int, n: int = 200):
    rng = np.random.default_rng(seed)
    inliers = rng.normal(0.0, 1.0, (n, 2))
    mc = rng.normal(0.0, 0.02, (6, 2)) + [8.0, 8.0]
    single = np.array([[-9.0, 9.0]])
    return np.vstack([inliers, mc, single])


@st.composite
def rotations(draw):
    theta = draw(st.floats(0.0, 2 * np.pi, allow_nan=False))
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s], [s, c]])


class TestRigidMotionInvariance:
    @given(seed=st.integers(0, 50), shift=st.floats(-1e3, 1e3))
    @settings(max_examples=15, deadline=None)
    def test_translation_invariance(self, seed, shift):
        # Translation changes coordinates but not distances.  The bbox
        # diameter estimate can move by a float ulp, which may flip
        # points whose 1NN distance sits exactly on a radius rung —
        # so assert the planted structure and near-total score equality
        # rather than bit-identical output.
        X = _planted(seed)
        a = McCatch().fit(X)
        b = McCatch().fit(X + shift)
        planted = set(range(200, 207))
        assert planted <= set(map(int, a.outlier_indices))
        assert planted <= set(map(int, b.outlier_indices))
        agree = np.isclose(a.point_scores, b.point_scores).mean()
        assert agree >= 0.95  # ceil(g/r1) flips on exact rung boundaries

    @given(seed=st.integers(0, 50), R=rotations())
    @settings(max_examples=15, deadline=None)
    def test_rotation_preserves_detections(self, seed, R):
        # Rotation preserves Euclidean distances exactly, but the kd-tree
        # diameter estimate (bounding box) is not rotation-invariant; use
        # the metric VP-tree whose estimate depends on distances only.
        X = _planted(seed)
        a = McCatch(index="vptree").fit(X)
        b = McCatch(index="vptree").fit(X @ R.T)
        assert np.array_equal(a.outlier_indices, b.outlier_indices)

    @given(seed=st.integers(0, 50), factor=st.floats(0.01, 100.0))
    @settings(max_examples=15, deadline=None)
    def test_scale_invariance_of_detections(self, seed, factor):
        X = _planted(seed)
        a = McCatch(index="vptree").fit(X)
        b = McCatch(index="vptree").fit(X * factor)
        assert np.array_equal(a.outlier_indices, b.outlier_indices)


class TestPermutationEquivariance:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_outlier_set_permutes_with_data(self, seed):
        X = _planted(seed)
        rng = np.random.default_rng(seed + 1)
        perm = rng.permutation(X.shape[0])
        a = McCatch(index="vptree").fit(X)
        b = McCatch(index="vptree").fit(X[perm])
        # Map b's detections back through the permutation.
        mapped = set(int(perm[i]) for i in b.outlier_indices)
        assert mapped == set(map(int, a.outlier_indices))


class TestOutputContracts:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_scores_positive_and_finite(self, seed):
        result = McCatch().fit(_planted(seed))
        assert np.isfinite(result.point_scores).all()
        assert (result.point_scores >= 0).all()
        for mc in result.microclusters:
            assert np.isfinite(mc.score) and mc.score > 0

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_microclusters_partition_outliers(self, seed):
        result = McCatch().fit(_planted(seed))
        flat = [int(i) for m in result.microclusters for i in m.indices]
        assert len(flat) == len(set(flat))
        assert sorted(flat) == sorted(map(int, result.outlier_indices))

    def test_small_dataset_edge(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [50.0, 50.0]])
        result = McCatch(n_radii=8).fit(X)
        assert result.n == 4
        assert np.isfinite(result.point_scores).all()

    def test_two_points(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = McCatch(n_radii=5).fit(X)
        assert result.n == 2  # degenerate but must not crash
