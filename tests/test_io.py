"""IO: CSV/string loaders and McCatchResult JSON round-trips."""

import json

import numpy as np
import pytest

from repro import McCatch
from repro.io import (
    load_labeled_csv,
    load_result_json,
    load_strings,
    load_vectors_csv,
    result_from_dict,
    result_to_dict,
    result_to_markdown,
    save_result_json,
    save_strings,
    save_vectors_csv,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(3)
    X = np.vstack([rng.normal(0, 1, (200, 3)), [[7.0, 7.0, 7.0], [7.1, 7.0, 7.0]]])
    return X, McCatch().fit(X)


class TestVectorsCsv:
    def test_round_trip_exact(self, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(25, 4))
        path = save_vectors_csv(tmp_path / "x.csv", X)
        back = load_vectors_csv(path)
        assert np.array_equal(back, X)  # repr() round-trips float64 exactly

    def test_header_round_trip(self, tmp_path):
        X = np.arange(6, dtype=float).reshape(3, 2)
        path = save_vectors_csv(tmp_path / "x.csv", X, header=["a", "b"])
        assert np.array_equal(load_vectors_csv(path), X)  # auto-skip header

    def test_explicit_skip_header(self, tmp_path):
        (tmp_path / "x.csv").write_text("1,2\n3,4\n")
        assert load_vectors_csv(tmp_path / "x.csv", skip_header=True).shape == (1, 2)

    def test_ragged_rows_rejected(self, tmp_path):
        (tmp_path / "bad.csv").write_text("1,2\n3\n")
        with pytest.raises(ValueError, match="row 2 has 1 fields"):
            load_vectors_csv(tmp_path / "bad.csv")

    def test_non_numeric_rejected(self, tmp_path):
        (tmp_path / "bad.csv").write_text("a,b\n1,2\n3,oops\n")
        with pytest.raises(ValueError, match="not numeric"):
            load_vectors_csv(tmp_path / "bad.csv")

    def test_empty_file_rejected(self, tmp_path):
        (tmp_path / "empty.csv").write_text("")
        with pytest.raises(ValueError, match="no data rows"):
            load_vectors_csv(tmp_path / "empty.csv")

    def test_header_only_rejected(self, tmp_path):
        (tmp_path / "h.csv").write_text("a,b\n")
        with pytest.raises(ValueError, match="header only"):
            load_vectors_csv(tmp_path / "h.csv")

    def test_save_validates(self, tmp_path):
        with pytest.raises(ValueError, match="2-d"):
            save_vectors_csv(tmp_path / "x.csv", np.zeros(3))
        with pytest.raises(ValueError, match="header has"):
            save_vectors_csv(tmp_path / "x.csv", np.zeros((2, 2)), header=["only-one"])


class TestLabeledCsv:
    def test_basic(self, tmp_path):
        (tmp_path / "d.csv").write_text("f1,f2,label\n1,2,0\n3,4,1\n5,6,no\n7,8,yes\n")
        X, y = load_labeled_csv(tmp_path / "d.csv")
        assert X.shape == (4, 2)
        assert list(y) == [False, True, False, True]

    def test_label_column_position(self, tmp_path):
        (tmp_path / "d.csv").write_text("outlier,1.0,2.0\ninlier,3.0,4.0\n")
        X, y = load_labeled_csv(tmp_path / "d.csv", label_column=0)
        assert X.shape == (2, 2)
        assert list(y) == [True, False]

    def test_bad_label_rejected(self, tmp_path):
        # A valid first row, then a malformed label (a lone bad first row
        # would be mistaken for a header by the auto-detection).
        (tmp_path / "d.csv").write_text("1,2,0\n1,2,maybe\n")
        with pytest.raises(ValueError, match="cannot parse label"):
            load_labeled_csv(tmp_path / "d.csv")


class TestStrings:
    def test_round_trip(self, tmp_path):
        names = ["smith", "müller", "garcía"]
        path = save_strings(tmp_path / "names.txt", names)
        assert load_strings(path) == names

    def test_comments_and_blanks_skipped(self, tmp_path):
        (tmp_path / "n.txt").write_text("# header\n\nsmith\n\njones\n")
        assert load_strings(tmp_path / "n.txt") == ["smith", "jones"]

    def test_newline_rejected_on_save(self, tmp_path):
        with pytest.raises(ValueError, match="newline"):
            save_strings(tmp_path / "n.txt", ["a\nb"])

    def test_empty_rejected(self, tmp_path):
        (tmp_path / "n.txt").write_text("# only comments\n")
        with pytest.raises(ValueError, match="no strings"):
            load_strings(tmp_path / "n.txt")


class TestResultRoundTrip:
    def test_dict_round_trip_preserves_everything(self, fitted):
        _, result = fitted
        back = result_from_dict(result_to_dict(result))
        assert back.n == result.n
        assert np.array_equal(back.point_scores, result.point_scores)
        assert np.array_equal(back.oracle.x, result.oracle.x)
        assert np.array_equal(back.oracle.y, result.oracle.y)
        assert np.array_equal(back.oracle.radii, result.oracle.radii)
        assert np.array_equal(back.oracle.counts, result.oracle.counts)
        assert back.cutoff.value == result.cutoff.value
        assert back.cutoff.index == result.cutoff.index
        assert len(back.microclusters) == len(result.microclusters)
        for a, b in zip(back.microclusters, result.microclusters):
            assert np.array_equal(a.indices, b.indices)
            assert a.score == b.score
            assert a.bridge_length == b.bridge_length

    def test_json_file_round_trip(self, fitted, tmp_path):
        _, result = fitted
        path = save_result_json(result, tmp_path / "run.json")
        back = load_result_json(path)
        assert np.array_equal(back.point_scores, result.point_scores)
        # The file itself is plain JSON.
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1

    def test_infinite_cutoff_survives(self, fitted):
        from dataclasses import replace

        _, result = fitted
        patched = type(result)(
            microclusters=[],
            point_scores=result.point_scores,
            oracle=result.oracle,
            cutoff=replace(result.cutoff, value=float("inf"), index=-1),
            n=result.n,
        )
        back = result_from_dict(result_to_dict(patched))
        assert np.isinf(back.cutoff.value)

    def test_unknown_version_rejected(self, fitted):
        _, result = fitted
        payload = result_to_dict(result)
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            result_from_dict(payload)

    def test_labels_and_properties_work_after_reload(self, fitted):
        _, result = fitted
        back = result_from_dict(result_to_dict(result))
        assert np.array_equal(back.labels, result.labels)
        assert back.n_outliers == result.n_outliers


class TestMarkdown:
    def test_table_structure(self, fitted):
        _, result = fitted
        md = result_to_markdown(result)
        assert md.splitlines()[0].startswith("# McCatch result")
        assert "| rank |" in md
        assert "| 0 |" in md

    def test_row_cap(self, fitted):
        _, result = fitted
        md = result_to_markdown(result, max_rows=1)
        if len(result.microclusters) > 1:
            assert "more microclusters" in md
