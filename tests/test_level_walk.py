"""Differential correctness of the level-synchronous walk.

The level walk's contract is bit-identity with the node-major stack
walk (:func:`repro.index.base.frontier_count_walk`) — the same
distances (queries stay on the Q side of every metric call), the same
``searchsorted`` boundary decisions, the same integer credits — for
every flat tree family, on vector, string, and tree data, including
the regression class the flat-tree tests pin (radius 0 with
duplicates, radii tying exact pairwise distances).  On top of that sit
the subtree-sharding primitives: opening the top of the tree, splitting
the frontier into disjoint node ranges, and resuming each piece must
sum to the serial matrix for any piece count, worker count, or backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_flat_trees import boundary_radii

from repro import McCatch
from repro.api import make_estimator
from repro.engine import BatchQueryEngine, ShardedWalkExecutor
from repro.index import (
    BallTree,
    CoverTree,
    MTree,
    SlimTree,
    VPTree,
)
from repro.index.base import (
    count_walk,
    frontier_count_walk,
    level_count_walk,
    open_tree_frontier,
    split_frontier,
)
from repro.io.indexes import load_index, save_index
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein
from repro.metric.trees import LabeledTree, tree_edit_distance

FLAT_KINDS = [VPTree, BallTree, CoverTree, MTree, SlimTree]
WORKER_COUNTS = [1, 2, 3, 7]


@pytest.fixture(scope="module")
def vspace():
    """Vector data with duplicates and a tight planted pair."""
    rng = np.random.default_rng(5)
    X = np.vstack(
        [
            rng.normal(0, 1, (70, 2)),
            np.zeros((5, 2)),  # exact duplicates
            [[7.0, 7.0], [7.0, 7.0], [7.2, 7.0]],  # duplicate outlier pair
        ]
    )
    return MetricSpace(X)


@pytest.fixture(scope="module")
def sspace():
    rng = np.random.default_rng(9)
    alphabet = list("ABCD")
    words = ["".join(rng.choice(alphabet, size=rng.integers(1, 8))) for _ in range(30)]
    words += ["AAAA"] * 3  # duplicates for the radius-0 class
    return MetricSpace(words, levenshtein)


@pytest.fixture(scope="module")
def tspace():
    rng = np.random.default_rng(13)

    def random_tree(depth: int) -> LabeledTree:
        label = "abcd"[int(rng.integers(4))]
        if depth == 0:
            return LabeledTree(label)
        children = [random_tree(depth - 1) for _ in range(int(rng.integers(0, 3)))]
        return LabeledTree(label, children)

    trees = [random_tree(2) for _ in range(12)]
    trees += [LabeledTree("a", [LabeledTree("b")])] * 2  # duplicates
    return MetricSpace(trees, tree_edit_distance)


SPACES = ["vspace", "sspace", "tspace"]


class TestLevelMatchesStack:
    """The level walk equals the stack walk bit for bit."""

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    @pytest.mark.parametrize("fixture", SPACES)
    def test_all_families_all_spaces(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        flat = cls(space).flat
        assert np.array_equal(
            level_count_walk(space, q, radii, flat),
            frontier_count_walk(space, q, radii, flat),
        )

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_subset_queries(self, cls, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(1, len(vspace), 3)
        flat = cls(vspace, np.arange(0, len(vspace), 2)).flat
        assert np.array_equal(
            level_count_walk(vspace, q, radii, flat),
            frontier_count_walk(vspace, q, radii, flat),
        )

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_walk_attribute_switches_implementation(self, cls, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        level = cls(vspace, walk="level")
        stack = cls(vspace, walk="stack")
        # The unqualified default is the environment-resolved "auto".
        assert cls(vspace).walk == "auto"
        assert level.walk == "level" and stack.walk == "stack"
        assert np.array_equal(
            level.count_within_many(q, radii), stack.count_within_many(q, radii)
        )

    def test_both_walks_collect_comparable_stats(self, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        flat = VPTree(vspace).flat
        level_stats: dict = {}
        stack_stats: dict = {}
        a = level_count_walk(vspace, q, radii, flat, stats=level_stats)
        b = frontier_count_walk(vspace, q, radii, flat, stats=stack_stats)
        assert np.array_equal(a, b)
        for stats in (level_stats, stack_stats):
            for key in ("steps", "entries", "distance_calls",
                        "searchsorted_calls", "scatter_calls"):
                assert stats[key] > 0
        # The level walk groups bookkeeping into O(depth) dispatches
        # while the stack walk pays one set per node visit — and its
        # virtual leaves stop descending into small single-rung
        # subtrees, so it touches no *more* frontier entries than the
        # stack walk (fewer whenever virtualization kicks in).
        assert level_stats["entries"] <= stack_stats["entries"]
        assert level_stats["steps"] < stack_stats["steps"]
        assert level_stats["distance_calls"] < stack_stats["distance_calls"]

    def test_walk_kwarg_validated(self, vspace):
        with pytest.raises(ValueError, match="walk"):
            VPTree(vspace, walk="recursive")
        with pytest.raises(ValueError, match="walk"):
            count_walk(
                vspace, np.arange(3), np.array([1.0]), VPTree(vspace).flat,
                walk="recursive",
            )


class TestFrontierSplitting:
    """open + split + per-piece resume sums to the serial matrix."""

    @pytest.mark.parametrize("pieces", WORKER_COUNTS)
    @pytest.mark.parametrize("fixture", SPACES)
    def test_piece_count_invariance(self, pieces, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        flat = VPTree(space).flat
        expected = level_count_walk(space, q, radii, flat)
        partial, frontier = open_tree_frontier(
            space, q, radii, flat, min_nodes=pieces
        )
        for piece in split_frontier(frontier, pieces):
            partial += level_count_walk(space, q, radii, flat, frontier=piece)
        assert np.array_equal(partial, expected)

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_every_family(self, cls, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        flat = cls(vspace).flat
        expected = level_count_walk(vspace, q, radii, flat)
        partial, frontier = open_tree_frontier(vspace, q, radii, flat, min_nodes=5)
        for piece in split_frontier(frontier, 5):
            partial += level_count_walk(vspace, q, radii, flat, frontier=piece)
        assert np.array_equal(partial, expected)

    def test_pieces_cover_disjoint_nodes(self, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        flat = BallTree(vspace).flat
        _, frontier = open_tree_frontier(vspace, q, radii, flat, min_nodes=4)
        pieces = split_frontier(frontier, 4)
        node_sets = [set(p.nodes.tolist()) for p in pieces]
        for i, left in enumerate(node_sets):
            for right in node_sets[i + 1:]:
                assert not (left & right)
        assert set().union(*node_sets) == set(frontier.nodes.tolist())

    def test_deep_open_finishes_walk(self, vspace):
        """min_nodes beyond the frontier's reach just finishes serially."""
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        flat = VPTree(vspace).flat
        partial, frontier = open_tree_frontier(
            vspace, q, radii, flat, min_nodes=10**9
        )
        assert frontier.nodes.size == 0
        assert np.array_equal(partial, level_count_walk(vspace, q, radii, flat))


class TestTreeSharding:
    """shard_by="tree" through the executor, engine, and McCatch."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("fixture", SPACES)
    def test_thread_backend_bit_identical(self, workers, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        tree = VPTree(space)
        expected = tree.count_within_many(q, radii)
        got = ShardedWalkExecutor(
            tree, workers=workers, backend="thread", shard_by="tree"
        ).count_within_many(q, radii)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("fixture", SPACES)
    def test_process_backend_bit_identical(self, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        tree = VPTree(space)
        expected = tree.count_within_many(q, radii)
        with ShardedWalkExecutor(
            tree, workers=2, shards=3, backend="process", shard_by="tree"
        ) as ex:
            assert np.array_equal(ex.count_within_many(q, radii), expected)

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_every_family_through_executor(self, cls, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        tree = cls(vspace)
        expected = tree.count_within_many(q, radii)
        got = ShardedWalkExecutor(
            tree, workers=3, backend="thread", shard_by="tree"
        ).count_within_many(q, radii)
        assert np.array_equal(got, expected)

    def test_index_sharded_method_forwards_axis(self, vspace):
        tree = VPTree(vspace)
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        sharded = tree.sharded(workers=2, shards=4, shard_by="tree")
        assert sharded.shard_by == "tree"
        assert np.array_equal(
            sharded.count_within_many(q, radii), tree.count_within_many(q, radii)
        )

    def test_executor_rejects_unknown_axis(self, vspace):
        with pytest.raises(ValueError, match="shard_by"):
            ShardedWalkExecutor(VPTree(vspace), workers=2, shard_by="columns")

    def test_engine_parallel_self_join_agrees(self, vspace):
        radii = np.unique(boundary_radii(vspace))[1:]
        tree = VPTree(vspace)
        c = 10
        reference = BatchQueryEngine(tree, mode="batched").self_join_counts(
            radii, max_cardinality=c
        )
        tree_sharded = BatchQueryEngine(
            tree, mode="parallel", workers=3, shard_by="tree"
        ).self_join_counts(radii, max_cardinality=c)
        assert np.array_equal(tree_sharded, reference)

    def test_mccatch_fit_bit_identical_to_serial(self, blob_with_mc):
        X, _ = blob_with_mc
        serial = McCatch(index="vptree").fit(X)
        sharded = McCatch(
            index="vptree", engine_mode="parallel", workers=2, shard_by="tree"
        ).fit(X)
        assert np.array_equal(serial.point_scores, sharded.point_scores)
        assert len(serial.microclusters) == len(sharded.microclusters)
        for a, b in zip(serial.microclusters, sharded.microclusters):
            assert np.array_equal(a.indices, b.indices)
            assert a.score == b.score

    def test_mccatch_validates_shard_by(self):
        with pytest.raises(ValueError, match="shard_by"):
            McCatch(shard_by="columns", engine_mode="parallel", workers=2)
        with pytest.raises(ValueError, match="shard_by"):
            McCatch(shard_by="tree")  # engine_mode is not parallel

    def test_spec_surfaces_shard_by(self):
        estimator = make_estimator("mccatch?engine=parallel&workers=2&shard_by=tree")
        assert estimator.detector.shard_by == "tree"
        assert "shard_by=tree" in estimator.spec
        assert make_estimator(estimator.spec).spec == estimator.spec
        # The default sharding axis canonicalizes away.
        assert "shard_by" not in make_estimator("mccatch?engine=parallel&workers=2").spec

    def test_cli_detect_shard_by_tree(self, tmp_path, capsys):
        from repro.cli import main

        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (80, 2)), [[9.0, 9.0]]])
        path = tmp_path / "data.csv"
        np.savetxt(path, X, delimiter=",")
        assert main(["detect", str(path), "--workers", "2", "--shard-by", "tree"]) == 0
        assert "microclusters" in capsys.readouterr().out

    def test_cli_shard_by_requires_workers(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "data.csv"
        np.savetxt(path, np.zeros((4, 2)), delimiter=",")
        with pytest.raises(SystemExit, match="--workers"):
            main(["detect", str(path), "--shard-by", "tree"])


class TestLeafParentDistances:
    """The M-tree d_elem arrays and the leaf-scatter filter they feed."""

    @pytest.mark.parametrize("cls", [MTree, SlimTree])
    @pytest.mark.parametrize("fixture", SPACES)
    def test_d_elem_exact(self, cls, fixture, request):
        space = request.getfixturevalue(fixture)
        flat = cls(space, capacity=4).flat
        assert flat.d_elem is not None
        for i in range(flat.n_nodes):
            if not flat.is_leaf(i):
                continue
            members = flat.elems[flat.elem_lo[i]: flat.elem_hi[i]]
            stored = flat.d_elem[flat.elem_lo[i]: flat.elem_hi[i]]
            expected = space.distances(int(flat.center[i]), members)
            assert np.array_equal(stored, expected)

    def test_filter_skips_entries_without_changing_counts(self, sspace):
        radii = boundary_radii(sspace)
        q = np.arange(len(sspace))
        flat = MTree(sspace, capacity=4).flat
        stats: dict = {}
        counts = level_count_walk(sspace, q, radii, flat, stats=stats)
        assert stats["leaf_entries_filtered"] > 0
        assert stats["leaf_entries_filtered"] < stats["leaf_entries_total"]
        assert np.array_equal(counts, frontier_count_walk(sspace, q, radii, flat))

    def test_euclidean_rect_kernel_filters_pairs(self, vspace):
        """Euclidean vector spaces route single-rung leaf entries
        through the float32 rect kernel: most pairs decide against the
        margin-bracketed squared radius without an exact float64
        evaluation, and the counts stay bit-identical to the stack
        walk (the assertion above every bench run pins this too)."""
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        flat = MTree(vspace, capacity=4).flat
        stats: dict = {}
        counts = level_count_walk(vspace, q, radii, flat, stats=stats)
        assert stats["leaf_entries_total"] > 0
        assert stats["leaf_entries_filtered"] > 0
        assert stats["leaf_entries_filtered"] <= stats["leaf_entries_total"]
        assert np.array_equal(counts, frontier_count_walk(vspace, q, radii, flat))

    def test_validation_rejects_misshapen_d_elem(self, vspace):
        from repro.index.base import FlatTree

        with pytest.raises(ValueError, match="d_elem"):
            FlatTree(
                center=[0], threshold=[0.0], radius=[0.0], size=[1],
                child_lo=[0], child_hi=[0], elem_lo=[0], elem_hi=[1], elems=[0],
                d_elem=[0.0, 1.0],
            )

    def test_persistence_round_trip(self, sspace, tmp_path):
        tree = MTree(sspace, capacity=4)
        path = save_index(tree, tmp_path / "mtree.npz")
        loaded = load_index(path, sspace)
        assert loaded.flat.d_elem is not None
        assert np.array_equal(loaded.flat.d_elem, tree.flat.d_elem)
        radii = boundary_radii(sspace)
        q = np.arange(len(sspace))
        assert np.array_equal(
            loaded.count_within_many(q, radii), tree.count_within_many(q, radii)
        )


class TestMaxDepth:
    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_matches_naive_recursion(self, cls, vspace):
        flat = cls(vspace).flat

        def naive(i: int) -> int:
            if flat.is_leaf(i):
                return 1
            return 1 + max(
                naive(c) for c in range(int(flat.child_lo[i]), int(flat.child_hi[i]))
            )

        assert flat.max_depth() == naive(0)
