"""Tests for repro.metric.base: MetricSpace and PrecomputedMetric."""

import numpy as np
import pytest

from repro.metric.base import MetricSpace, PrecomputedMetric, pairwise_distances
from repro.metric.strings import levenshtein


class TestVectorSpace:
    def test_basic_properties(self, vector_space):
        assert vector_space.is_vector
        assert vector_space.dimensionality == 2
        assert len(vector_space) == 510

    def test_1d_array_promoted(self):
        space = MetricSpace(np.array([1.0, 2.0, 5.0]))
        assert space.dimensionality == 1
        assert space.distance(0, 2) == pytest.approx(4.0)

    def test_distance_matrix_symmetric_zero_diag(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        dm = MetricSpace(X).distance_matrix()
        assert np.allclose(dm, dm.T)
        assert np.allclose(np.diag(dm), 0.0, atol=1e-7)

    def test_distances_match_matrix(self):
        X = np.random.default_rng(1).normal(size=(15, 2))
        space = MetricSpace(X)
        dm = space.distance_matrix()
        got = space.distances(3, [0, 7, 14])
        assert np.allclose(got, dm[3, [0, 7, 14]])

    def test_distances_among(self):
        X = np.random.default_rng(2).normal(size=(10, 2))
        space = MetricSpace(X)
        dm = space.distance_matrix()
        got = space.distances_among([1, 3], [0, 5, 9])
        assert np.allclose(got, dm[np.ix_([1, 3], [0, 5, 9])])

    def test_distances_to_external_object(self):
        X = np.zeros((3, 2))
        space = MetricSpace(X)
        d = space.distances_to(np.array([3.0, 4.0]), [0, 1])
        assert np.allclose(d, 5.0)

    def test_subset(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        sub = MetricSpace(X).subset([2, 5])
        assert len(sub) == 2
        assert sub.distance(0, 1) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricSpace(np.empty((0, 2)))

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="2-d"):
            MetricSpace(np.zeros((2, 2, 2)))


class TestObjectSpace:
    def test_requires_metric(self):
        with pytest.raises(ValueError, match="explicit metric"):
            MetricSpace(["a", "b"])

    def test_metric_must_be_callable(self):
        with pytest.raises(TypeError):
            MetricSpace(["a", "b"], metric="edit")

    def test_distance(self, string_space):
        assert not string_space.is_vector
        assert string_space.dimensionality is None
        assert string_space.distance(0, 1) == 1.0  # SMITH vs SMYTH

    def test_distance_matrix_metric_axioms(self, string_space):
        dm = string_space.distance_matrix()
        assert np.allclose(dm, dm.T)
        assert np.allclose(np.diag(dm), 0.0)

    def test_subset_preserves_metric(self, string_space):
        sub = string_space.subset([0, 1])
        assert sub.distance(0, 1) == 1.0


class TestPrecomputedMetric:
    def test_space_roundtrip(self):
        m = np.array([[0.0, 2.0], [2.0, 0.0]])
        space = PrecomputedMetric(m).space()
        assert space.distance(0, 1) == 2.0

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            PrecomputedMetric(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            PrecomputedMetric(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            PrecomputedMetric(np.zeros((2, 3)))


def test_pairwise_distances_helper():
    dm = pairwise_distances(["AB", "AC", "BX"], levenshtein)
    assert dm.shape == (3, 3)
    assert dm[0, 1] == 1.0
    assert dm[0, 2] == 2.0


class TestPairedDistances:
    def test_vector_matches_distances_bitwise(self):
        rng = np.random.default_rng(2)
        space = MetricSpace(rng.normal(size=(20, 3)))
        left = rng.integers(0, 20, size=15)
        right = rng.integers(0, 20, size=15)
        paired = space.paired_distances(left, right)
        for k in range(15):
            assert paired[k] == space.distance(int(left[k]), int(right[k]))

    def test_object_space(self):
        space = MetricSpace(["AB", "AC", "BX", "AB"], levenshtein)
        out = space.paired_distances([0, 1, 0], [3, 2, 2])
        assert out.tolist() == [0.0, 2.0, 2.0]

    def test_length_mismatch_rejected(self):
        space = MetricSpace(np.zeros((4, 2)))
        with pytest.raises(ValueError, match="equal lengths"):
            space.paired_distances([0, 1], [2])
