"""Tests for repro.metric.fractal: correlation dimension estimation."""

import numpy as np
import pytest

from repro.datasets.synthetic import diagonal_line, uniform_cube
from repro.metric.fractal import (
    correlation_dimension,
    correlation_integral,
    expected_runtime_slope,
)
from repro.metric.strings import levenshtein


class TestCorrelationIntegral:
    def test_monotone_nondecreasing(self):
        X = uniform_cube(300, 2, random_state=0)
        radii, C = correlation_integral(X, random_state=0)
        assert (np.diff(C) >= 0).all()
        assert C[-1] == pytest.approx(1.0)

    def test_increasing_radii(self):
        X = uniform_cube(200, 3, random_state=1)
        radii, _ = correlation_integral(X, random_state=0)
        assert (np.diff(radii) > 0).all()

    def test_rejects_tiny_dataset(self):
        with pytest.raises(ValueError, match="at least 3"):
            correlation_integral(np.zeros((2, 2)))

    def test_rejects_coincident_points(self):
        with pytest.raises(ValueError, match="coincide"):
            correlation_integral(np.zeros((10, 2)))


class TestCorrelationDimension:
    def test_uniform_2d(self):
        X = uniform_cube(1500, 2, random_state=0)
        u = correlation_dimension(X, random_state=0)
        assert 1.5 <= u <= 2.5

    def test_uniform_5d_higher_than_2d(self):
        u2 = correlation_dimension(uniform_cube(1500, 2, random_state=0), random_state=0)
        u5 = correlation_dimension(uniform_cube(1500, 5, random_state=0), random_state=0)
        assert u5 > u2

    def test_diagonal_is_one_dimensional(self):
        X = diagonal_line(1500, 10, random_state=0)
        u = correlation_dimension(X, random_state=0)
        assert 0.7 <= u <= 1.3

    def test_subsampling_path(self):
        # More points than sample_size exercises the subsample branch.
        X = uniform_cube(500, 2, random_state=0)
        u = correlation_dimension(X, sample_size=200, random_state=0)
        assert 1.3 <= u <= 2.7

    def test_nondimensional_data(self):
        words = [w + s for w in ("AAA", "BBB", "CCC", "DDD") for s in
                 ("", "X", "XY", "XYZ", "XYZW", "Q", "QR", "QRS")]
        u = correlation_dimension(words, levenshtein, random_state=0)
        assert u > 0


class TestExpectedSlope:
    def test_formula(self):
        assert expected_runtime_slope(1.0) == pytest.approx(1.0)
        assert expected_runtime_slope(2.0) == pytest.approx(1.5)
        assert expected_runtime_slope(20.0) == pytest.approx(1.95)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            expected_runtime_slope(0.0)


class TestNondimensionalFractalDimension:
    """Footnote 7: the fractal dimension needs only distances, so it is
    computable for strings, sequences, and sets — the quantity Lemma 1's
    complexity bound depends on for nondimensional data."""

    def test_random_strings_have_positive_dimension(self):
        import numpy as np
        from repro.metric.strings import levenshtein

        rng = np.random.default_rng(0)
        words = ["".join(rng.choice(list("ABCDEF"), size=rng.integers(3, 10)))
                 for _ in range(120)]
        u = correlation_dimension(words, metric=levenshtein)
        assert 0.5 < u < 20.0

    def test_token_sequences(self):
        import numpy as np
        from repro.metric.sequences import sequence_edit_distance

        rng = np.random.default_rng(1)
        seqs = [tuple(rng.choice(["a", "b", "c"], size=rng.integers(3, 9)))
                for _ in range(100)]
        u = correlation_dimension(seqs, metric=sequence_edit_distance)
        assert u > 0.0

    def test_set_data_under_jaccard(self):
        import numpy as np
        from repro.metric.sets import jaccard_distance

        rng = np.random.default_rng(2)
        baskets = [frozenset(rng.choice(20, size=rng.integers(2, 8), replace=False))
                   for _ in range(100)]
        u = correlation_dimension(baskets, metric=jaccard_distance)
        assert u > 0.0
