"""Sequence metrics: known values, metric axioms (hypothesis), and the
ERP-vs-DTW relationship."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metric.sequences import (
    dtw,
    erp,
    hamming,
    lcs_distance,
    sequence_edit_distance,
    transformation_cost_for_sequences,
)

tokens = st.lists(st.sampled_from(["A", "C", "G", "T"]), max_size=12).map(tuple)
series = st.lists(
    st.floats(-10, 10, allow_nan=False, allow_infinity=False), min_size=1, max_size=10
)


class TestHamming:
    def test_known_value(self):
        assert hamming("ACGT", "ACCT") == 1.0
        assert hamming([1, 2, 3], [1, 2, 3]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal lengths"):
            hamming("AB", "ABC")

    @given(st.integers(1, 8), st.integers(0, 10_000))
    def test_metric_axioms(self, length, seed):
        rng = np.random.default_rng(seed)
        a, b, c = (tuple(rng.integers(0, 3, length)) for _ in range(3))
        assert hamming(a, a) == 0.0
        assert hamming(a, b) == hamming(b, a)
        assert hamming(a, c) <= hamming(a, b) + hamming(b, c)


class TestSequenceEditDistance:
    def test_matches_string_levenshtein(self):
        from repro.metric.strings import levenshtein

        pairs = [("kitten", "sitting"), ("", "abc"), ("flaw", "lawn"), ("abc", "abc")]
        for a, b in pairs:
            assert sequence_edit_distance(tuple(a), tuple(b)) == levenshtein(a, b)

    def test_token_granularity(self):
        # As token sequences these differ by ONE substitution; as strings
        # they would differ by many characters.
        a = ("open", "read", "close")
        b = ("open", "write", "close")
        assert sequence_edit_distance(a, b) == 1.0

    @given(tokens, tokens)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_identity(self, a, b):
        assert sequence_edit_distance(a, a) == 0.0
        assert sequence_edit_distance(a, b) == sequence_edit_distance(b, a)
        if a != b:
            assert sequence_edit_distance(a, b) >= 1.0

    @given(tokens, tokens, tokens)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        d_ac = sequence_edit_distance(a, c)
        d_ab = sequence_edit_distance(a, b)
        d_bc = sequence_edit_distance(b, c)
        assert d_ac <= d_ab + d_bc

    def test_bounds(self):
        a, b = ("x",) * 5, ("y",) * 3
        d = sequence_edit_distance(a, b)
        assert max(len(a), len(b)) - min(len(a), len(b)) <= d <= max(len(a), len(b))


class TestLCSDistance:
    def test_known_value(self):
        # LCS("ABCBDAB", "BDCABA") = 4 ("BCBA"/"BDAB"), distance 7+6-8=5
        assert lcs_distance("ABCBDAB", "BDCABA") == 5.0

    def test_empty(self):
        assert lcs_distance("", "") == 0.0
        assert lcs_distance("abc", "") == 3.0

    @given(tokens, tokens)
    @settings(max_examples=60, deadline=None)
    def test_dominates_edit_distance(self, a, b):
        # Forbidding replacement can only lengthen the script.
        assert lcs_distance(a, b) >= sequence_edit_distance(a, b)

    @given(tokens, tokens, tokens)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert lcs_distance(a, c) <= lcs_distance(a, b) + lcs_distance(b, c) + 1e-12


class TestERP:
    def test_identical_series(self):
        assert erp([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_reduces_to_l1_for_equal_lengths_when_aligned(self):
        # With no length difference and monotone values the optimal ERP
        # alignment is the diagonal: plain L1.
        a, b = [1.0, 2.0, 3.0], [1.5, 2.5, 3.5]
        assert erp(a, b) == pytest.approx(1.5)

    def test_empty_side_costs_gap_mass(self):
        assert erp([], [1.0, -2.0], gap=0.0) == pytest.approx(3.0)

    def test_gap_parameter(self):
        assert erp([5.0], [], gap=5.0) == 0.0

    @given(series, series)
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_nonnegativity(self, a, b):
        assert erp(a, b) >= 0.0
        assert erp(a, b) == pytest.approx(erp(b, a))

    @given(series, series, series)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert erp(a, c) <= erp(a, b) + erp(b, c) + 1e-9


class TestDTW:
    def test_identical(self):
        assert dtw([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_elastic_alignment_beats_l1(self):
        # A time-shifted copy is cheap under DTW, expensive pointwise.
        a = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0]
        b = [0.0, 1.0, 2.0, 1.0, 0.0, 0.0]
        assert dtw(a, b) == 0.0
        assert np.abs(np.array(a) - np.array(b)).sum() > 0

    def test_window_constrains(self):
        a = list(np.sin(np.linspace(0, 3, 20)))
        b = list(np.sin(np.linspace(0.5, 3.5, 20)))
        unconstrained = dtw(a, b)
        banded = dtw(a, b, window=1)
        assert banded >= unconstrained

    def test_not_a_metric_documented_counterexample(self):
        # Triangle-inequality failure: b's elastic alignment absorbs the
        # middle samples that cost a directly against c.
        a, b, c = [2.0, 2.0, 0.0], [2.0, 0.0, 1.0], [0.0, 1.0]
        assert dtw(a, c) > dtw(a, b) + dtw(b, c)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="nonempty"):
            dtw([], [1.0])

    def test_negative_window_raises(self):
        with pytest.raises(ValueError, match="window"):
            dtw([1.0], [1.0], window=-1)

    @given(series, series)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, a, b):
        assert dtw(a, b) == pytest.approx(dtw(b, a))

    @given(series)
    @settings(max_examples=30, deadline=None)
    def test_erp_upper_bounds_dtw_at_zero_gap_for_same_series(self, a):
        # Both vanish on identical inputs.
        assert dtw(a, a) == 0.0
        assert erp(a, a) == 0.0


class TestTransformationCost:
    def test_positive_and_monotone_in_alphabet(self):
        small = transformation_cost_for_sequences([("A", "B"), ("B",)])
        large = transformation_cost_for_sequences([tuple("ABCDEFGH"), tuple("IJKLMNOP")])
        assert 0 < small < large

    def test_empty_sequences_ok(self):
        assert transformation_cost_for_sequences([(), ()]) > 0


class TestMcCatchOnSequences:
    def test_detects_planted_odd_sequences(self):
        """McCatch over syscall-like token sequences (goal G1)."""
        from repro import McCatch

        rng = np.random.default_rng(5)
        vocab = ["open", "read", "write", "close", "stat", "seek"]
        data = [
            tuple(rng.choice(vocab, size=rng.integers(4, 9)))
            for _ in range(120)
        ]
        # Two near-identical attack traces, far from every normal trace.
        attack = ("exec", "fork") * 10
        data.append(attack)
        data.append(attack[:-1] + ("socket",))
        result = McCatch(index="vptree").fit(data, metric=sequence_edit_distance)
        flagged = {int(i) for m in result.microclusters for i in m.indices}
        assert {120, 121} <= flagged
        pair = [m for m in result.microclusters if set(m.indices) == {120, 121}]
        assert len(pair) == 1 and pair[0].cardinality == 2
