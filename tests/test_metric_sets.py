"""Set metrics: known values and metric axioms (hypothesis)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metric.sets import (
    jaccard_distance,
    ngram_jaccard,
    ngram_profile,
    symmetric_difference_distance,
    weighted_jaccard_distance,
)

small_sets = st.frozensets(st.integers(0, 12), max_size=8)
weight_vectors = st.lists(st.floats(0, 10, allow_nan=False), min_size=3, max_size=3)


class TestJaccard:
    def test_known_values(self):
        assert jaccard_distance({1, 2}, {2, 3}) == pytest.approx(1 - 1 / 3)
        assert jaccard_distance({1}, {1}) == 0.0
        assert jaccard_distance({1}, {2}) == 1.0

    def test_empty_sets(self):
        assert jaccard_distance(set(), set()) == 0.0
        assert jaccard_distance(set(), {1}) == 1.0

    def test_accepts_iterables(self):
        assert jaccard_distance([1, 2, 2], (2, 3)) == pytest.approx(1 - 1 / 3)

    @given(small_sets, small_sets)
    @settings(max_examples=80, deadline=None)
    def test_symmetry_identity_bounds(self, a, b):
        assert jaccard_distance(a, a) == 0.0
        assert jaccard_distance(a, b) == jaccard_distance(b, a)
        assert 0.0 <= jaccard_distance(a, b) <= 1.0

    @given(small_sets, small_sets, small_sets)
    @settings(max_examples=80, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert jaccard_distance(a, c) <= (
            jaccard_distance(a, b) + jaccard_distance(b, c) + 1e-12
        )


class TestSymmetricDifference:
    def test_known_value(self):
        assert symmetric_difference_distance({1, 2, 3}, {3, 4}) == 3.0

    @given(small_sets, small_sets, small_sets)
    @settings(max_examples=80, deadline=None)
    def test_metric_axioms(self, a, b, c):
        assert symmetric_difference_distance(a, a) == 0.0
        d_ab = symmetric_difference_distance(a, b)
        assert d_ab == symmetric_difference_distance(b, a)
        assert symmetric_difference_distance(a, c) <= d_ab + symmetric_difference_distance(b, c)


class TestWeightedJaccard:
    def test_counter_form(self):
        a = Counter({"x": 2, "y": 1})
        b = Counter({"x": 1, "z": 1})
        # min-sum = 1, max-sum = 2 + 1 + 1 = 4
        assert weighted_jaccard_distance(a, b) == pytest.approx(0.75)

    def test_vector_form(self):
        assert weighted_jaccard_distance([1.0, 0.0], [1.0, 0.0]) == 0.0
        assert weighted_jaccard_distance([1.0, 0.0], [0.0, 1.0]) == 1.0

    def test_reduces_to_jaccard_on_indicators(self):
        a, b = {1, 2}, {2, 3}
        va = [1.0, 1.0, 0.0]
        vb = [0.0, 1.0, 1.0]
        assert weighted_jaccard_distance(va, vb) == pytest.approx(jaccard_distance(a, b))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            weighted_jaccard_distance([-1.0, 0.0], [0.0, 1.0])
        with pytest.raises(ValueError, match="nonnegative"):
            weighted_jaccard_distance(Counter({"a": -1}), Counter())

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths differ"):
            weighted_jaccard_distance([1.0], [1.0, 2.0])

    def test_both_zero(self):
        assert weighted_jaccard_distance([0.0, 0.0], [0.0, 0.0]) == 0.0

    @given(weight_vectors, weight_vectors, weight_vectors)
    @settings(max_examples=80, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        d_ac = weighted_jaccard_distance(a, c)
        d_ab = weighted_jaccard_distance(a, b)
        d_bc = weighted_jaccard_distance(b, c)
        assert d_ac <= d_ab + d_bc + 1e-9


class TestNgramProfile:
    def test_padding_marks_affixes(self):
        p = ngram_profile("ab", n=2)
        assert "\x00a" in p and "b\x00" in p and "ab" in p

    def test_no_padding(self):
        assert ngram_profile("abcd", n=2, pad=False) == frozenset({"ab", "bc", "cd"})

    def test_short_string(self):
        assert ngram_profile("", n=3, pad=False) == frozenset()
        assert ngram_profile("a", n=3, pad=False) == frozenset({"a"})

    def test_invalid_n(self):
        with pytest.raises(ValueError, match="n must be"):
            ngram_profile("abc", n=0)

    def test_ngram_jaccard_separates_unrelated_words(self):
        near = ngram_jaccard("johnson", "johnsen")
        far = ngram_jaccard("johnson", "xylophone")
        assert near < far

    @given(st.text(alphabet="abcde", max_size=10), st.text(alphabet="abcde", max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_ngram_jaccard_is_pseudometric(self, a, b):
        assert ngram_jaccard(a, a) == 0.0
        assert ngram_jaccard(a, b) == ngram_jaccard(b, a)
        assert 0.0 <= ngram_jaccard(a, b) <= 1.0


class TestMcCatchOnSets:
    def test_detects_odd_baskets(self):
        """Market-basket microclusters under Jaccard distance."""
        from repro import McCatch

        rng = np.random.default_rng(9)
        staples = ["bread", "milk", "eggs", "butter", "coffee", "tea"]
        baskets = [
            frozenset(rng.choice(staples, size=rng.integers(2, 5), replace=False))
            for _ in range(150)
        ]
        weird = [frozenset({"acetone", "peroxide", "fuse"}),
                 frozenset({"acetone", "peroxide", "timer"})]
        data = baskets + weird
        result = McCatch(index="vptree").fit(data, metric=jaccard_distance)
        flagged = {int(i) for m in result.microclusters for i in m.indices}
        assert {150, 151} <= flagged
