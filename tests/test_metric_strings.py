"""Tests for repro.metric.strings: edit distances and soundex."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metric.strings import damerau_levenshtein, levenshtein, soundex, soundex_distance

words = st.text(alphabet="ABCDE", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("A", "", 1),
            ("", "ABC", 3),
            ("KITTEN", "SITTING", 3),
            ("FLAW", "LAWN", 2),
            ("SMITH", "SMYTH", 1),
            ("ABC", "ABC", 0),
            ("AB", "BA", 2),  # plain Levenshtein: no transposition
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(a=words, b=words)
    @settings(max_examples=80)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(a=words, b=words)
    @settings(max_examples=80)
    def test_identity_of_indiscernibles(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)

    @given(a=words, b=words, c=words)
    @settings(max_examples=80)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(a=words, b=words)
    @settings(max_examples=80)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))
        assert levenshtein(a, b) >= abs(len(a) - len(b))


class TestDamerauLevenshtein:
    def test_transposition_counts_one(self):
        assert damerau_levenshtein("AB", "BA") == 1

    def test_at_most_levenshtein(self):
        for a, b in [("KITTEN", "SITTING"), ("ABCD", "ACBD"), ("XY", "YX")]:
            assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    @given(a=words, b=words)
    @settings(max_examples=60)
    def test_symmetry(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)


class TestSoundex:
    @pytest.mark.parametrize(
        "word,code",
        [
            ("ROBERT", "R163"),
            ("RUPERT", "R163"),
            ("ASHCRAFT", "A261"),
            ("TYMCZAK", "T522"),
            ("PFISTER", "P236"),
            ("HONEYMAN", "H555"),
        ],
    )
    def test_classic_examples(self, word, code):
        assert soundex(word) == code

    def test_empty(self):
        assert soundex("") == "0000"

    def test_distance_zero_for_homophones(self):
        assert soundex_distance("ROBERT", "RUPERT") == 0

    def test_distance_positive_for_unrelated(self):
        assert soundex_distance("SMITH", "GARCIA") > 0
