"""Tests for repro.metric.transformation: Def. 7's cost t."""

import pytest

from repro.core.mdl import universal_code_length
from repro.metric.transformation import (
    transformation_cost_for_strings,
    transformation_cost_for_trees,
    transformation_cost_for_vectors,
)
from repro.metric.trees import LabeledTree


class TestVectors:
    def test_equals_dimensionality(self):
        assert transformation_cost_for_vectors(7) == 7.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            transformation_cost_for_vectors(0)


class TestStrings:
    def test_formula_components(self):
        words = ["AB", "ABC"]
        expected = (
            universal_code_length(3)  # operation choice
            + universal_code_length(3)  # distinct chars: A, B, C
            + universal_code_length(3)  # longest word
        )
        assert transformation_cost_for_strings(words) == pytest.approx(expected)

    def test_monotone_in_alphabet(self):
        small = transformation_cost_for_strings(["AAAA"])
        large = transformation_cost_for_strings(["ABCDEFGH"])
        assert large > small

    def test_empty_strings_safe(self):
        assert transformation_cost_for_strings(["", ""]) >= universal_code_length(3)


class TestTrees:
    def test_monotone_in_labels_and_size(self):
        small = transformation_cost_for_trees([LabeledTree("a")])
        big_tree = LabeledTree.from_tuple(("a", ("b", ("c",)), ("d",), ("e",)))
        large = transformation_cost_for_trees([big_tree])
        assert large > small
