"""Tests for repro.metric.trees: LabeledTree and Zhang-Shasha TED."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metric.trees import LabeledTree, tree_edit_distance, tree_from_edges


def leaf(label):
    return LabeledTree(label)


@st.composite
def random_trees(draw, max_nodes=8):
    labels = st.sampled_from("abcd")

    def build(budget):
        label = draw(labels)
        if budget <= 1:
            return LabeledTree(label), 1
        n_children = draw(st.integers(0, min(3, budget - 1)))
        children, used = [], 1
        for _ in range(n_children):
            child, k = build(budget - used)
            children.append(child)
            used += k
            if used >= budget:
                break
        return LabeledTree(label, children), used

    tree, _ = build(draw(st.integers(1, max_nodes)))
    return tree


class TestLabeledTree:
    def test_size_and_depth(self):
        t = LabeledTree.from_tuple(("a", ("b", ("c",)), ("d",)))
        assert t.size() == 4
        assert t.depth() == 3

    def test_labels_postorder(self):
        t = LabeledTree.from_tuple(("a", ("b",), ("c",)))
        assert t.labels() == ["b", "c", "a"]

    def test_equality_structural(self):
        t1 = LabeledTree.from_tuple(("a", ("b",)))
        t2 = LabeledTree.from_tuple(("a", ("b",)))
        t3 = LabeledTree.from_tuple(("a", ("c",)))
        assert t1 == t2
        assert t1 != t3
        assert hash(t1) == hash(t2)

    def test_from_edges_roundtrip(self):
        t = tree_from_edges(4, [(0, 1), (0, 2), (2, 3)], ["r", "a", "b", "c"])
        assert t.size() == 4
        assert t.label == "r"

    def test_from_edges_rejects_cycle(self):
        with pytest.raises(ValueError, match="needs"):
            tree_from_edges(3, [(0, 1), (1, 2), (2, 0)], ["a", "b", "c"])

    def test_from_edges_rejects_disconnected(self):
        with pytest.raises(ValueError, match="disconnected"):
            tree_from_edges(4, [(0, 1), (2, 3), (0, 1)], list("abcd"))


class TestTreeEditDistance:
    def test_identical_trees(self):
        t = LabeledTree.from_tuple(("a", ("b",), ("c", ("d",))))
        assert tree_edit_distance(t, t) == 0.0

    def test_single_relabel(self):
        t1 = LabeledTree.from_tuple(("a", ("b",)))
        t2 = LabeledTree.from_tuple(("a", ("c",)))
        assert tree_edit_distance(t1, t2) == 1.0

    def test_single_insert(self):
        t1 = LabeledTree.from_tuple(("a",))
        t2 = LabeledTree.from_tuple(("a", ("b",)))
        assert tree_edit_distance(t1, t2) == 1.0

    def test_leaf_vs_chain(self):
        t1 = leaf("a")
        t2 = LabeledTree.from_tuple(("a", ("a", ("a",))))
        assert tree_edit_distance(t1, t2) == 2.0

    def test_classic_zhang_shasha_example(self):
        # f(d(a c(b)) e)  ->  f(c(d(a b)) e) : distance 2.
        t1 = LabeledTree.from_tuple(("f", ("d", ("a",), ("c", ("b",))), ("e",)))
        t2 = LabeledTree.from_tuple(("f", ("c", ("d", ("a",), ("b",))), ("e",)))
        assert tree_edit_distance(t1, t2) == 2.0

    def test_custom_costs(self):
        t1 = LabeledTree.from_tuple(("a",))
        t2 = LabeledTree.from_tuple(("b",))
        # Cheap relabel is used directly...
        assert tree_edit_distance(t1, t2, relabel_cost=1.5) == 1.5
        # ...but an expensive relabel is beaten by delete + insert.
        assert tree_edit_distance(t1, t2, relabel_cost=5.0) == 2.0

    def test_size_difference_lower_bound(self):
        t1 = LabeledTree.from_tuple(("a", ("b",), ("c",)))
        t2 = leaf("a")
        assert tree_edit_distance(t1, t2) >= t1.size() - t2.size()

    @given(t1=random_trees(), t2=random_trees())
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, t1, t2):
        assert tree_edit_distance(t1, t2) == tree_edit_distance(t2, t1)

    @given(t=random_trees())
    @settings(max_examples=40, deadline=None)
    def test_identity(self, t):
        assert tree_edit_distance(t, t) == 0.0

    @given(t1=random_trees(max_nodes=6), t2=random_trees(max_nodes=6), t3=random_trees(max_nodes=6))
    @settings(max_examples=25, deadline=None)
    def test_triangle_inequality(self, t1, t2, t3):
        d13 = tree_edit_distance(t1, t3)
        d12 = tree_edit_distance(t1, t2)
        d23 = tree_edit_distance(t2, t3)
        assert d13 <= d12 + d23

    @given(t1=random_trees(max_nodes=6), t2=random_trees(max_nodes=6))
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_total_size(self, t1, t2):
        assert tree_edit_distance(t1, t2) <= t1.size() + t2.size()
