"""Tests for repro.metric.vector: L_p metrics, scalar and bulk forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metric.vector import chebyshev, cityblock, euclidean, minkowski, vector_metric

finite_vec = arrays(
    np.float64, 4, elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False)
)


class TestScalarForm:
    def test_euclidean_known_value(self):
        assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_cityblock_known_value(self):
        assert cityblock([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev_known_value(self):
        assert chebyshev([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_minkowski_p3_known_value(self):
        assert minkowski(3)([0, 0], [1, 1]) == pytest.approx(2 ** (1 / 3))

    def test_identity(self):
        assert euclidean([1.5, -2.0], [1.5, -2.0]) == 0.0

    def test_p_below_one_rejected(self):
        with pytest.raises(ValueError, match="p >= 1"):
            minkowski(0.5)

    @given(a=finite_vec, b=finite_vec)
    @settings(max_examples=50)
    def test_symmetry(self, a, b):
        assert euclidean(a, b) == pytest.approx(euclidean(b, a))

    @given(a=finite_vec, b=finite_vec, c=finite_vec)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9

    @given(a=finite_vec, b=finite_vec)
    @settings(max_examples=50)
    def test_lp_ordering(self, a, b):
        # L-inf <= L2 <= L1 always.
        assert chebyshev(a, b) <= euclidean(a, b) + 1e-9
        assert euclidean(a, b) <= cityblock(a, b) + 1e-9


class TestBulkForm:
    @pytest.mark.parametrize("metric", [euclidean, cityblock, chebyshev, minkowski(3)])
    def test_bulk_matches_scalar(self, metric, rng):
        Q = rng.normal(size=(5, 3))
        X = rng.normal(size=(7, 3))
        bulk = metric.bulk(Q, X)
        assert bulk.shape == (5, 7)
        for i in range(5):
            for j in range(7):
                assert bulk[i, j] == pytest.approx(metric(Q[i], X[j]), abs=1e-9)

    def test_bulk_self_distances_zero_diagonal(self, rng):
        X = rng.normal(size=(6, 2))
        d = euclidean.bulk(X, X)
        assert np.allclose(np.diag(d), 0.0, atol=1e-7)

    def test_bulk_no_negative_from_roundoff(self):
        X = np.full((2, 3), 1e8)
        d = euclidean.bulk(X, X)
        assert (d >= 0).all()


class TestPairedForm:
    """The level-synchronous tree builds lean on ``paired`` being in the
    same float universe as ``bulk`` — a last-ulp drift between the two
    would flip counts at exact boundary radii (the PR 1 regression
    class), so these are exact-equality pins, not approx checks."""

    @pytest.mark.parametrize("metric", [euclidean, cityblock, chebyshev, minkowski(3)])
    def test_paired_bitwise_matches_bulk_diagonal(self, metric, rng):
        for d in (1, 2, 7, 40, 200):
            A = np.ascontiguousarray(rng.normal(size=(30, d)) * 10.0)
            B = np.ascontiguousarray(rng.normal(size=(30, d)))
            B[::3] = A[::3]  # identical rows must come out exactly 0
            diag = metric.bulk(A, B)[np.arange(30), np.arange(30)]
            assert np.array_equal(metric.paired(A, B), diag)

    @pytest.mark.parametrize("metric", [euclidean, cityblock, chebyshev, minkowski(3)])
    def test_paired_bitwise_matches_single_row_bulk(self, metric, rng):
        A = rng.normal(size=(12, 5))
        B = rng.normal(size=(12, 5))
        paired = metric.paired(A, B)
        for i in range(12):
            assert paired[i] == metric.bulk(A[i : i + 1], B[i : i + 1])[0, 0]

    def test_paired_identical_rows_exact_zero(self):
        A = np.random.default_rng(0).normal(size=(9, 4)) * 1e6
        assert (euclidean.paired(A, A.copy()) == 0.0).all()


class TestResolver:
    @pytest.mark.parametrize(
        "name,expected_p", [("euclidean", 2.0), ("manhattan", 1.0), ("linf", np.inf)]
    )
    def test_by_name(self, name, expected_p):
        assert vector_metric(name).p == expected_p

    def test_by_order(self):
        assert vector_metric(4).p == 4.0

    def test_passthrough(self):
        assert vector_metric(euclidean) is euclidean

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown vector metric"):
            vector_metric("cosine")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            vector_metric(object())
