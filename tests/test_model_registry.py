"""ModelRegistry: publish/resolve/list, versioning, and the serving CLI."""

import numpy as np
import pytest

from repro.api import (
    ModelRegistry,
    dataset_fingerprint,
    make_estimator,
)
from repro.cli import main


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(3)
    return np.vstack([rng.normal(0.0, 1.0, (150, 2)), [[9.0, 9.0], [9.1, 9.0]]])


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(5)
    return np.vstack([rng.normal(0.0, 1.0, (20, 2)), [[55.0, -55.0]]])


class TestFingerprint:
    def test_deterministic_and_content_sensitive(self, dataset):
        a = dataset_fingerprint(dataset)
        assert a == dataset_fingerprint(dataset.copy())
        perturbed = dataset.copy()
        perturbed[0, 0] += 1e-9
        assert a != dataset_fingerprint(perturbed)

    def test_path_escaping_fingerprints_rejected(self, dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        model = make_estimator("dbout").fit(dataset)
        with pytest.raises(ValueError, match="invalid dataset fingerprint"):
            registry.publish(model, fingerprint="../escape")
        with pytest.raises(ValueError, match="invalid dataset fingerprint"):
            registry.record("dbout", fingerprint="..")

    def test_object_data_supported(self):
        a = dataset_fingerprint(["SMITH", "SMYTH"])
        assert a != dataset_fingerprint(["SMITH", "SMYTX"])
        # length-prefixed: no boundary ambiguity
        assert dataset_fingerprint(["ab", "c"]) != dataset_fingerprint(["a", "bc"])


class TestPublishResolve:
    def test_publish_resolve_mmap_bit_identical(self, dataset, batch, tmp_path):
        # The PR's acceptance scenario: publish a McCatch model, resolve
        # it mmap-loaded, and score a held-out batch bit-identically to
        # the in-memory model.
        registry = ModelRegistry(tmp_path / "reg")
        model = make_estimator("mccatch?index=vptree").fit(dataset)
        record = registry.publish(model)
        assert record.version == 1
        assert record.fingerprint == dataset_fingerprint(dataset)
        served = registry.resolve("mccatch?index=vptree", mmap=True)
        assert np.array_equal(served.score_batch(batch), model.score_batch(batch))

    def test_versions_grow_and_latest_wins(self, dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        model = make_estimator("knnout?k=3").fit(dataset)
        assert registry.publish(model).version == 1
        assert registry.publish(model).version == 2
        latest = registry.record("knnout?k=3")
        assert latest.version == 2
        pinned = registry.record("knnout?k=3", version=1)
        assert pinned.version == 1
        with pytest.raises(LookupError, match="version 9 not published"):
            registry.record("knnout?k=3", version=9)

    def test_spec_is_canonicalized_for_lookup(self, dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        model = make_estimator("mccatch?index=vptree&a=10").fit(dataset)
        registry.publish(model)
        # same key, different spelling/order
        record = registry.record("MCCATCH?a=10&index=vptree")
        assert record.spec == "mccatch?a=10&index=vptree"

    def test_ambiguous_fingerprint_requires_disambiguation(self, dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        est = make_estimator("knnout?k=3")
        registry.publish(est.fit(dataset))
        registry.publish(est.fit(dataset * 2.0))
        with pytest.raises(LookupError, match="2 datasets"):
            registry.record("knnout?k=3")
        record = registry.record("knnout?k=3", data=dataset * 2.0)
        assert record.fingerprint == dataset_fingerprint(dataset * 2.0)

    def test_missing_spec_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(LookupError, match="no published models"):
            registry.record("lof?k=5")

    def test_crashed_publish_leftover_is_skipped(self, dataset, tmp_path):
        # an empty version dir (crashed or racing publisher) must be
        # stepped over, not fought over
        registry = ModelRegistry(tmp_path / "reg")
        model = make_estimator("knnout?k=3").fit(dataset)
        first = registry.publish(model)
        leftover = first.path.parent.parent / "v0002"
        leftover.mkdir()  # claimed but never completed
        record = registry.publish(model)
        assert record.version == 3
        assert registry.record("knnout?k=3").version == 3

    def test_spec_less_core_model_cannot_be_published(self, dataset, tmp_path):
        # a core-API archive carries no spec; inventing one would
        # misattribute the configuration, so publish refuses
        from repro import McCatch
        from repro.api import FittedModel

        core = McCatch(n_radii=30, index="vptree").fit_model(dataset)
        path = core.save(tmp_path / "core.npz")
        loaded = FittedModel.load(path)
        assert loaded.spec is None
        with pytest.raises(ValueError, match="without a spec"):
            ModelRegistry(tmp_path / "reg").publish(loaded)

    def test_publish_leaves_no_temp_artifacts(self, dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        record = registry.publish(make_estimator("dbout").fit(dataset))
        assert record.path.name == "model.npz"
        assert not list(record.path.parent.glob("*.tmp"))

    def test_failed_save_releases_the_claimed_version(self, dataset, tmp_path):
        # a McCatch model over the non-flat auto kd-tree cannot be
        # saved; the claimed version dir must be released, not leaked
        registry = ModelRegistry(tmp_path / "reg")
        bad = make_estimator("mccatch").fit(dataset)  # index=auto -> ckdtree
        with pytest.raises(TypeError, match="FlatTree"):
            registry.publish(bad)
        assert not list(registry.root.rglob("v*"))  # claim released
        assert not list(registry.root.rglob("*.tmp"))

    def test_list_filters_by_spec(self, dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(make_estimator("knnout?k=3").fit(dataset))
        registry.publish(make_estimator("dbout").fit(dataset))
        registry.publish(make_estimator("dbout").fit(dataset))
        assert len(registry.list()) == 3
        dbout_records = registry.list(spec="dbout")
        assert [r.version for r in dbout_records] == [1, 2]
        assert all(r.path.is_file() for r in dbout_records)


class TestLatestVersion:
    """The cheap freshness probe the serving watcher polls."""

    def test_none_until_first_publish_then_monotone(self, dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        fp = dataset_fingerprint(dataset)
        assert registry.latest_version("knnout?k=3", fingerprint=fp) is None
        model = make_estimator("knnout?k=3").fit(dataset)
        registry.publish(model)
        assert registry.latest_version("knnout?k=3", fingerprint=fp) == 1
        registry.publish(model)
        assert registry.latest_version("knnout?k=3", fingerprint=fp) == 2

    def test_data_and_bare_spec_resolution(self, dataset, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(make_estimator("knnout?k=3").fit(dataset))
        # data= derives the fingerprint; no pin at all resolves via the
        # sole published key (the expensive path a watcher avoids)
        assert registry.latest_version("knnout?k=3", data=dataset) == 1
        assert registry.latest_version("knnout?k=3") == 1
        assert registry.latest_version("dbout") is None

    def test_concurrent_publish_race_reports_completed_only(
        self, dataset, tmp_path
    ):
        # a racing publisher claims the next version dir first, then
        # streams the artifact, then lands meta.json (the completeness
        # marker).  The probe must never report the claimed-but-
        # incomplete version: a watcher would mmap a half-written file.
        registry = ModelRegistry(tmp_path / "reg")
        model = make_estimator("knnout?k=3").fit(dataset)
        first = registry.publish(model)
        fp = first.fingerprint
        claimed = first.path.parent.parent / "v0002"
        claimed.mkdir()  # the race: mkdir won, nothing written yet
        assert registry.latest_version("knnout?k=3", fingerprint=fp) == 1
        (claimed / "model.npz").write_bytes(b"partial")  # artifact landing
        assert registry.latest_version("knnout?k=3", fingerprint=fp) == 1
        # meta.json lands last (atomically in the real publisher): only
        # now is v2 complete and reported
        (claimed / "meta.json").write_text("{}")
        assert registry.latest_version("knnout?k=3", fingerprint=fp) == 2

    def test_invalid_fingerprint_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(ValueError, match="invalid dataset fingerprint"):
            registry.latest_version("knnout?k=3", fingerprint="../escape")


class TestServingCli:
    @pytest.fixture()
    def csv(self, tmp_path, dataset):
        path = tmp_path / "data.csv"
        np.savetxt(path, dataset, delimiter=",")
        return path

    @pytest.fixture()
    def held(self, tmp_path, batch):
        path = tmp_path / "held.csv"
        np.savetxt(path, batch, delimiter=",")
        return path

    def test_fit_spec_publish_then_score_mmap(self, csv, held, tmp_path, capsys):
        reg = tmp_path / "registry"
        assert main(["fit", str(csv), "--spec", "mccatch?index=vptree",
                     "--registry", str(reg)]) == 0
        out = capsys.readouterr().out
        assert "model published to" in out
        assert "version=1" in out
        assert main(["score", "mccatch?index=vptree", str(held),
                     "--registry", str(reg), "--mmap", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "scored rows=21" in out
        assert "yes" in out  # the far [55, -55] row is flagged

    def test_fit_mccatch_spec_without_index_is_persistable(self, csv, tmp_path, capsys):
        # a spec that doesn't pin index= must not fall into the
        # non-persistable "auto" kd-tree: the --index default (vptree)
        # fills the gap
        model_path = tmp_path / "m.npz"
        assert main(["fit", str(csv), "--spec", "mccatch?a=20",
                     "-o", str(model_path)]) == 0
        assert "model saved to" in capsys.readouterr().out
        assert main(["fit", str(csv), "--spec", "mccatch?a=20",
                     "--index", "balltree", "-o", str(model_path)]) == 0
        capsys.readouterr()

    def test_fit_baseline_spec_to_file_and_score(self, csv, held, tmp_path, capsys):
        model_path = tmp_path / "lof.npz"
        assert main(["fit", str(csv), "--spec", "lof?k=10",
                     "-o", str(model_path)]) == 0
        out = capsys.readouterr().out
        assert "spec=lof?k=10" in out
        assert main(["score", str(model_path), str(held)]) == 0
        out = capsys.readouterr().out
        assert "scored rows=21" in out

    def test_models_publish_bare_mccatch_spec(self, csv, tmp_path, capsys):
        # publish must apply the same index-default rewrite as fit:
        # a bare "mccatch" spec would otherwise die at save time
        reg = tmp_path / "registry"
        assert main(["models", "publish", str(reg), str(csv),
                     "--spec", "mccatch"]) == 0
        assert "mccatch?index=vptree" in capsys.readouterr().out

    def test_score_falls_back_to_sole_published_detector_spec(
        self, csv, held, tmp_path, capsys
    ):
        # fitted with a non-default index: scoring by the bare spec
        # still resolves the one published mccatch model
        reg = tmp_path / "registry"
        assert main(["fit", str(csv), "--spec", "mccatch", "--index", "balltree",
                     "--registry", str(reg)]) == 0
        capsys.readouterr()
        assert main(["score", "mccatch", str(held),
                     "--registry", str(reg), "--top", "2"]) == 0
        assert "scored rows=21" in capsys.readouterr().out

    def test_score_never_substitutes_different_hyperparameters(
        self, csv, held, tmp_path, capsys
    ):
        # the index-only fallback must NOT serve a model whose other
        # parameters differ from the requested spec
        reg = tmp_path / "registry"
        assert main(["fit", str(csv), "--spec", "mccatch?a=30",
                     "--registry", str(reg)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="no published models"):
            main(["score", "mccatch?a=5", str(held), "--registry", str(reg)])

    def test_fit_rejects_spec_plus_conflicting_flags(self, csv, tmp_path):
        with pytest.raises(SystemExit, match="--n-radii cannot be combined"):
            main(["fit", str(csv), "--spec", "mccatch", "--n-radii", "30",
                  "-o", str(tmp_path / "m.npz")])
        with pytest.raises(SystemExit, match="--index cannot be combined"):
            main(["fit", str(csv), "--spec", "mccatch?index=mtree",
                  "--index", "balltree", "-o", str(tmp_path / "m.npz")])
        # an explicitly typed default value still counts as given
        with pytest.raises(SystemExit, match="--index cannot be combined"):
            main(["fit", str(csv), "--spec", "mccatch?index=mtree",
                  "--index", "vptree", "-o", str(tmp_path / "m.npz")])
        with pytest.raises(SystemExit, match="--metric cannot be combined"):
            main(["fit", str(csv), "--spec", "mccatch?metric=manhattan",
                  "--metric", "euclidean", "-o", str(tmp_path / "m.npz")])
        with pytest.raises(SystemExit, match="--index applies only to McCatch"):
            main(["fit", str(csv), "--spec", "lof?k=5",
                  "--index", "balltree", "-o", str(tmp_path / "m.npz")])

    def test_score_spec_without_registry_hints(self, held):
        with pytest.raises(SystemExit, match="needs --registry"):
            main(["score", "mccatch?index=vptree", str(held)])

    def test_silently_dropped_flags_are_rejected(self, csv, held, tmp_path):
        with pytest.raises(SystemExit, match="cannot be combined with --registry"):
            main(["fit", str(csv), "--registry", str(tmp_path / "reg"),
                  "-o", str(tmp_path / "also.npz")])
        # even spelling out the default output path counts as given
        with pytest.raises(SystemExit, match="cannot be combined with --registry"):
            main(["fit", str(csv), "--registry", str(tmp_path / "reg"),
                  "-o", "mccatch_model.npz"])
        with pytest.raises(SystemExit, match="require --registry"):
            main(["score", str(tmp_path / "m.npz"), str(held),
                  "--model-version", "2"])

    def test_metric_is_part_of_the_registry_key(self, csv, held, tmp_path, capsys):
        # same data, different fit metric -> different artifacts; a bare
        # spec must NOT silently serve either one
        reg = tmp_path / "registry"
        assert main(["fit", str(csv), "--spec", "mccatch",
                     "--registry", str(reg)]) == 0
        assert main(["fit", str(csv), "--spec", "mccatch", "--metric", "manhattan",
                     "--registry", str(reg)]) == 0
        out = capsys.readouterr().out
        assert "metric=manhattan" in out
        assert main(["score", "mccatch?index=vptree&metric=manhattan", str(held),
                     "--registry", str(reg), "--top", "1"]) == 0
        capsys.readouterr()
        # euclidean and manhattan artifacts both exist: no unique
        # index-only fallback, so the bare default spec serves euclidean
        assert main(["score", "mccatch", str(held),
                     "--registry", str(reg), "--top", "1"]) == 0
        assert "note:" not in capsys.readouterr().out

    def test_models_publish_list_resolve(self, csv, tmp_path, capsys):
        reg = tmp_path / "registry"
        assert main(["models", "publish", str(reg), str(csv),
                     "--spec", "knnout?k=4"]) == 0
        capsys.readouterr()
        assert main(["models", "list", str(reg)]) == 0
        out = capsys.readouterr().out
        assert "knnout?k=4" in out
        assert main(["models", "resolve", str(reg), "knnout?k=4"]) == 0
        out = capsys.readouterr().out.strip()
        assert out.endswith("model.npz")

    def test_models_list_empty_registry(self, tmp_path, capsys):
        assert main(["models", "list", str(tmp_path / "nothing")]) == 0
        assert "no published models" in capsys.readouterr().out

    def test_models_list_bad_spec_filter_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown detector"):
            main(["models", "list", str(tmp_path / "reg"), "--spec", "bogus"])

    def test_fit_and_score_agree_on_unpinned_spec(self, csv, held, tmp_path, capsys):
        # `fit --spec mccatch` and `score mccatch` must land on the same
        # registry key despite the index-default rewrite
        reg = tmp_path / "registry"
        assert main(["fit", str(csv), "--spec", "mccatch",
                     "--registry", str(reg)]) == 0
        capsys.readouterr()
        assert main(["score", "mccatch", str(held),
                     "--registry", str(reg), "--top", "2"]) == 0
        assert "scored rows=21" in capsys.readouterr().out

    def test_bad_spec_fails_loudly(self, csv, tmp_path):
        with pytest.raises(SystemExit, match="unknown detector"):
            main(["fit", str(csv), "--spec", "wat?x=1", "-o", str(tmp_path / "m.npz")])

    def test_score_unpublished_spec_fails_loudly(self, csv, tmp_path):
        with pytest.raises(SystemExit, match="no published models"):
            main(["score", "lof?k=5", str(csv), "--registry", str(tmp_path / "reg")])
