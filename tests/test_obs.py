"""repro.obs: registry semantics, exposition format, sinks, tracing, /metrics.

The contracts pinned here:

- instrument semantics (counters only go up, histograms keep fixed
  buckets, conflicting re-registration fails loudly),
- the ``/metrics`` exposition stays valid Prometheus text 0.0.4 while
  concurrent traffic mutates it, and counters read monotonically
  across scrapes,
- the process sinks merge walk stats without double-counting a reused
  stats dict, and disabling them restores the untouched hot path
  bit for bit,
- request traces land in the access log with every span present and
  mutually ordered,
- ``/healthz`` and ``/metrics`` report the same served-traffic truth,
- telemetry on vs off never changes a score.
"""

import asyncio
import io
import json
import logging
import threading

import numpy as np
import pytest

from repro.api import make_estimator
from repro.cli import main
from repro.index import build_index
from repro.index.base import count_walk
from repro.metric.base import MetricSpace
from repro.obs import (
    MetricsRegistry,
    RequestTrace,
    configure_logging,
    disable_process_telemetry,
    enable_process_telemetry,
    parse_exposition,
    process_sinks_snapshot,
    telemetry_enabled,
    validate_exposition,
)
from repro.obs import hooks
from repro.obs.tracing import ACCESS_LOGGER, SPAN_ORDER, JsonLineFormatter
from repro.serve import MicroBatcher, ScoreClient, ScoringServer

SPEC = "mccatch?index=vptree"


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(3)
    return np.vstack([rng.normal(0.0, 1.0, (150, 3)), [[9.0, 9.0, 9.0]]])


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(5)
    return np.vstack([rng.normal(0.0, 1.0, (24, 3)), [[40.0, -40.0, 1.0]]])


@pytest.fixture(scope="module")
def model(dataset):
    return make_estimator(SPEC).fit(dataset)


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# registry instruments


class TestRegistryInstruments:
    def test_counter_only_goes_up(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("t_gauge", "help")
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds", "help", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        child = h.labels()
        assert child.count == 4
        assert child.sum == pytest.approx(6.05)
        cumulative = child.cumulative()
        assert [c for _, c in cumulative] == [1, 3, 4]
        assert cumulative[-1][0] == float("inf")

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("t_bad", "help", buckets=(1.0, 0.5))

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("t_routes_total", "help", labelnames=("route",))
        fam.labels("/score").inc(3)
        fam.labels(route="/healthz").inc()
        assert fam.labels("/score").value == 3.0
        assert fam.labels("/healthz").value == 1.0
        with pytest.raises(ValueError):
            fam.labels("/a", "/b")  # wrong arity
        with pytest.raises(ValueError):
            fam.inc()  # labelled family has no solo child

    def test_reregistration_is_idempotent_but_conflicts_raise(self):
        reg = MetricsRegistry()
        first = reg.counter("t_total", "help")
        assert reg.counter("t_total", "help") is first
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("t_total", "help")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("t_total", "help", labelnames=("x",))

    def test_callbacks_read_at_collection_time(self):
        reg = MetricsRegistry()
        box = {"n": 0, "by": {}}
        reg.register_callback("t_cb_total", "counter", "help", lambda: box["n"])
        reg.register_callback(
            "t_cb_labelled_total", "counter", "help",
            lambda: box["by"], labelnames=("kind",),
        )
        box["n"] = 7
        box["by"] = {("a",): 2.0, ("b",): 3.0}
        assert reg.read("t_cb_total") == 7.0
        assert reg.read("t_cb_labelled_total") == 5.0
        assert reg.read("t_cb_labelled_total", match={"kind": "b"}) == 3.0
        with pytest.raises(ValueError, match="counter or gauge"):
            reg.register_callback("t_cb_h", "histogram", "help", lambda: 0)

    def test_read_guards(self):
        reg = MetricsRegistry()
        reg.histogram("t_h", "help")
        with pytest.raises(KeyError):
            reg.read("t_missing")
        with pytest.raises(ValueError, match="histogram"):
            reg.read("t_h")


class TestExposition:
    def test_render_parse_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("t_requests_total", "reqs", labelnames=("route",)) \
            .labels("/score").inc(5)
        reg.gauge("t_depth", "queue depth").set(2.0)
        h = reg.histogram("t_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = reg.render()
        families = validate_exposition(
            text, require=("t_requests_total", "t_depth", "t_seconds")
        )
        assert families["t_requests_total"]["type"] == "counter"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in families["t_requests_total"]["samples"]
        }
        assert samples[("t_requests_total", (("route", "/score"),))] == 5.0
        hist = {
            (name, labels.get("le")): value
            for name, labels, value in families["t_seconds"]["samples"]
        }
        assert hist[("t_seconds_count", None)] == 2.0
        assert hist[("t_seconds_bucket", "+Inf")] == 2.0

    def test_label_values_escape_and_roundtrip(self):
        reg = MetricsRegistry()
        tricky = 'quo"te\\slash\nnewline'
        reg.counter("t_esc_total", "help", labelnames=("v",)).labels(tricky).inc()
        families = parse_exposition(reg.render())
        (_, labels, value), = families["t_esc_total"]["samples"]
        assert labels["v"] == tricky
        assert value == 1.0

    def test_validator_rejects_malformed_text(self):
        with pytest.raises(ValueError, match="_total"):
            validate_exposition("# TYPE t_x counter\nt_x 1\n")
        with pytest.raises(ValueError, match="no # TYPE"):
            validate_exposition("t_y 1\n")
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("t_z 1 2 3 4\n")
        with pytest.raises(ValueError, match="missing"):
            validate_exposition("# TYPE a_total counter\na_total 1\n",
                                require=("b_total",))

    def test_scrapes_stay_valid_and_monotonic_under_concurrent_writes(self):
        reg = MetricsRegistry()
        fam = reg.counter("t_hits_total", "help", labelnames=("w",))
        hist = reg.histogram("t_obs_seconds", "help")
        stop = threading.Event()

        def hammer(w: str):
            child = fam.labels(w)
            while not stop.is_set():
                child.inc()
                hist.observe(0.01)

        threads = [threading.Thread(target=hammer, args=(str(i),)) for i in range(4)]
        for t in threads:
            t.start()
        try:
            last = -1.0
            for _ in range(25):
                families = validate_exposition(
                    reg.render(), require=("t_hits_total", "t_obs_seconds")
                )
                total = sum(
                    v for name, _, v in families["t_hits_total"]["samples"]
                )
                assert total >= last
                last = total
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert last > 0


# ---------------------------------------------------------------------------
# process sinks (walk + engine hot paths)


@pytest.fixture()
def sinks():
    """Fresh process sinks for one test; restores the prior state after."""
    was_on = telemetry_enabled()
    disable_process_telemetry()
    walk, engine = enable_process_telemetry()
    yield walk, engine
    disable_process_telemetry()
    if was_on:
        enable_process_telemetry()


@pytest.fixture(scope="module")
def walk_setup():
    rng = np.random.default_rng(17)
    space = MetricSpace(rng.normal(size=(80, 3)))
    tree = build_index(space, kind="vptree").flat
    radii = np.array([0.4, 0.9, 1.7])
    qids = np.arange(20)
    return space, tree, radii, qids

class TestProcessSinks:
    def test_walks_merge_into_the_sink(self, sinks, walk_setup):
        walk, _ = sinks
        space, tree, radii, qids = walk_setup
        stats = {}
        count_walk(space, qids, radii, tree, stats=stats)
        merged = walk.as_dict()
        assert merged["walks"] == 1.0
        assert merged["seconds"] > 0.0
        for key, value in stats.items():
            assert merged[key] == float(value)

    def test_reused_stats_dict_is_not_double_counted(self, sinks, walk_setup):
        walk, _ = sinks
        space, tree, radii, qids = walk_setup
        # callers accumulate one stats dict across sharded resumes; the
        # sink must receive each call's delta, not the running total again
        stats = {}
        count_walk(space, qids, radii, tree, stats=stats)
        count_walk(space, qids, radii, tree, stats=stats)
        merged = walk.as_dict()
        assert merged["walks"] == 2.0
        for key, value in stats.items():
            assert merged[key] == float(value)

    def test_disabled_sinks_change_nothing(self, walk_setup):
        space, tree, radii, qids = walk_setup
        disable_process_telemetry()
        try:
            assert hooks.WALK is None and not telemetry_enabled()
            baseline = count_walk(space, qids, radii, tree)
            assert process_sinks_snapshot() == {}
        finally:
            enable_process_telemetry()
        with_sink = count_walk(space, qids, radii, tree)
        assert np.array_equal(baseline, with_sink)

    def test_fit_populates_walk_and_engine_sinks(self, sinks, dataset):
        walk, engine = sinks
        make_estimator(SPEC).fit(dataset)
        assert walk.get("walks") > 0
        assert engine.get("count_calls") > 0
        assert engine.get("count_queries") >= len(dataset)

    def test_bound_registry_reads_the_sinks(self, sinks, walk_setup):
        walk, _ = sinks
        space, tree, radii, qids = walk_setup
        reg = MetricsRegistry()
        hooks.bind_process_sinks(reg)
        count_walk(space, qids, radii, tree)
        assert reg.read("repro_walk_calls_total") == walk.get("walks")
        assert reg.read("repro_walk_seconds_total") > 0.0
        validate_exposition(reg.render(), require=(
            "repro_walk_calls_total", "repro_engine_count_calls_total",
        ))


# ---------------------------------------------------------------------------
# tracing


class TestTracing:
    def test_record_orders_spans_by_start(self):
        trace = RequestTrace(request_id="rid-1")
        t0 = trace.t0
        trace.mark("engine_batch", t0 + 0.002, t0 + 0.005)
        trace.mark("parse", t0, t0 + 0.001)
        trace.mark("queue_wait", t0 + 0.001, t0 + 0.002)
        trace.annotate(rows=1)
        record = trace.record(status=200)
        assert record["request_id"] == "rid-1"
        assert record["rows"] == 1 and record["status"] == 200
        assert list(record["spans"]) == ["parse", "queue_wait", "engine_batch"]
        starts = [s["start_ms"] for s in record["spans"].values()]
        assert starts == sorted(starts)

    def test_json_line_formatter(self):
        formatter = JsonLineFormatter()
        record = logging.LogRecord(
            "repro.serve.access", logging.INFO, __file__, 1,
            {"request_id": "x", "spans": {}}, None, None,
        )
        payload = json.loads(formatter.format(record))
        assert payload["request_id"] == "x"
        assert payload["level"] == "info"
        plain = logging.LogRecord(
            "repro.serve", logging.WARNING, __file__, 1, "plain %s", ("msg",), None
        )
        assert json.loads(formatter.format(plain))["msg"] == "plain msg"

    def test_configure_logging_is_idempotent_and_validates(self):
        parent = logging.getLogger("repro.serve")
        before = list(parent.handlers)
        try:
            configure_logging("info", stream=io.StringIO())
            configure_logging("warning", stream=io.StringIO())
            ours = [h for h in parent.handlers
                    if getattr(h, "_repro_obs_handler", False)]
            assert len(ours) == 1
            with pytest.raises(ValueError, match="unknown log level"):
                configure_logging("verbose")
        finally:
            for h in list(parent.handlers):
                if getattr(h, "_repro_obs_handler", False):
                    parent.removeHandler(h)
            parent.handlers.extend(h for h in before if h not in parent.handlers)
            parent.setLevel(logging.NOTSET)


# ---------------------------------------------------------------------------
# the serving tier end to end


async def _score_concurrently(server, rows) -> np.ndarray:
    async def one(i):
        client = await ScoreClient.connect("127.0.0.1", server.port)
        try:
            return await client.score_row(rows[i])
        finally:
            await client.close()

    return np.asarray(
        await asyncio.gather(*(one(i) for i in range(len(rows)))),
        dtype=np.float64,
    )


class TestServerTelemetry:
    def test_metrics_endpoint_is_valid_and_monotonic_under_traffic(
        self, model, batch
    ):
        async def inner():
            server = await ScoringServer(model, port=0, window_s=0.002).start()
            try:
                await _score_concurrently(server, batch)
                client = await ScoreClient.connect("127.0.0.1", server.port)
                try:
                    status, text1 = await client.request("GET", "/metrics")
                    assert status == 200
                    await _score_concurrently(server, batch)
                    status, text2 = await client.request("GET", "/metrics")
                    assert status == 200
                finally:
                    await client.close()
            finally:
                await server.stop()
            return text1, text2

        text1, text2 = run(inner())
        required = (
            "repro_http_requests_total", "repro_http_request_seconds",
            "repro_batcher_batches_total", "repro_batch_rows",
            "repro_batch_queue_wait_seconds", "repro_batch_service_seconds",
            "repro_distance_evaluations_total", "repro_model_generation",
            "repro_server_uptime_seconds", "repro_walk_calls_total",
        )
        first = validate_exposition(text1, require=required)
        second = validate_exposition(text2, require=required)

        def total(families, name):
            return sum(v for sample, _, v in families[name]["samples"]
                       if sample == name)

        served1 = total(first, "repro_http_requests_total")
        served2 = total(second, "repro_http_requests_total")
        assert served1 >= len(batch)
        # monotonic across scrapes: the second saw strictly more traffic
        assert served2 >= served1 + len(batch)
        # the instrumented metric space saw the actual scoring traffic
        assert total(second, "repro_distance_evaluations_total") > 0

    def test_healthz_reports_registry_truth_and_identity(self, model, batch):
        async def inner():
            server = await ScoringServer(model, port=0, window_s=0.002).start()
            try:
                await _score_concurrently(server, batch)
                client = await ScoreClient.connect("127.0.0.1", server.port)
                try:
                    _, health = await client.request("GET", "/healthz")
                    _, text = await client.request("GET", "/metrics")
                finally:
                    await client.close()
            finally:
                await server.stop()
            return health, text

        health, text = run(inner())
        for key in ("model_version", "generation", "uptime_s"):
            assert key in health
        assert health["generation"] == 0
        assert health["uptime_s"] > 0
        families = parse_exposition(text)
        scored = sum(
            v for name, _, v in families["repro_batcher_rows_scored_total"]["samples"]
        )
        # /healthz counters are registry reads: the two views agree
        # (the /healthz request itself is not a scored row)
        assert health["rows_scored"] == scored
        assert health["requests_served"] >= len(batch)

    def test_telemetry_off_scores_identically_and_hides_metrics(self, model, batch):
        async def inner():
            on = await ScoringServer(model, port=0, window_s=0.002).start()
            off = await ScoringServer(
                model, port=0, window_s=0.002, metrics=False
            ).start()
            try:
                scores_on = await _score_concurrently(on, batch)
                scores_off = await _score_concurrently(off, batch)
                client = await ScoreClient.connect("127.0.0.1", off.port)
                try:
                    status, body = await client.request("GET", "/metrics")
                finally:
                    await client.close()
            finally:
                await on.stop()
                await off.stop()
            return scores_on, scores_off, status, body

        scores_on, scores_off, status, body = run(inner())
        assert np.array_equal(scores_on, scores_off)
        assert status == 404
        assert body["error"]["code"] == "metrics_disabled"

    def test_access_log_carries_ordered_spans(self, model, batch):
        stream = io.StringIO()
        parent = logging.getLogger("repro.serve")
        configure_logging("info", stream=stream)
        try:
            async def inner():
                server = await ScoringServer(model, port=0, window_s=0.002).start()
                try:
                    await _score_concurrently(server, batch[:8])
                finally:
                    await server.stop()

            run(inner())
        finally:
            for h in list(parent.handlers):
                if getattr(h, "_repro_obs_handler", False):
                    parent.removeHandler(h)
            parent.setLevel(logging.NOTSET)
        lines = [ln for ln in stream.getvalue().splitlines() if ln.strip()]
        records = [json.loads(ln) for ln in lines]
        scores = [r for r in records if r.get("path") == "/score"]
        assert len(scores) == 8
        assert len({r["request_id"] for r in scores}) == 8
        for record in scores:
            assert record["status"] == 200
            assert record["rows"] == 1
            assert record["batched_rows"] >= 1
            assert record["generation"] == 0
            spans = record["spans"]
            assert set(SPAN_ORDER) <= set(spans)
            # one clock, one origin: rendered offsets are mutually ordered
            starts = [spans[name]["start_ms"] for name in SPAN_ORDER]
            assert starts == sorted(starts)
            assert all(s["dur_ms"] >= 0.0 for s in spans.values())

    def test_shed_requests_warn_with_retry_after(self, caplog):
        async def inner():
            release = asyncio.Event()

            async def slow(rows):
                await release.wait()
                return rows.sum(axis=1)

            batcher = MicroBatcher(slow, window_s=0.0, max_pending=1)
            first = asyncio.ensure_future(batcher.submit(np.ones((1, 2))))
            await asyncio.sleep(0.01)  # head is being scored (blocked)
            second = asyncio.ensure_future(batcher.submit(np.ones((1, 2))))
            await asyncio.sleep(0.01)  # second now occupies the queue
            with pytest.raises(Exception) as excinfo:
                await batcher.submit(np.ones((3, 2)))
            release.set()
            await asyncio.gather(first, second)
            await batcher.drain()
            return excinfo.value

        with caplog.at_level(logging.WARNING, logger="repro.serve.batcher"):
            exc = run(inner())
        assert exc.retry_after >= 1.0
        shed = [r.msg for r in caplog.records
                if isinstance(r.msg, dict) and r.msg.get("event") == "request_shed"]
        assert len(shed) == 1
        event = shed[0]
        assert event["max_pending"] == 1
        assert event["rows"] == 3
        assert event["retry_after_s"] >= 1.0
        assert event["requests_shed"] == 1


# ---------------------------------------------------------------------------
# the stats CLI against a live server


@pytest.fixture()
def live_server(model, batch):
    """A telemetry-on server running in a background thread's loop."""
    loop = asyncio.new_event_loop()
    server = ScoringServer(model, port=0, window_s=0.002)
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        loop.run_until_complete(_score_concurrently(server, batch[:4]))
        started.set()
        loop.run_forever()
        loop.run_until_complete(server.stop())
        loop.close()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(20), "server thread failed to start"
    yield server
    loop.call_soon_threadsafe(loop.stop)
    thread.join(20)


class TestStatsCommand:
    def test_stats_scrapes_and_summarises(self, live_server, capsys):
        url = f"http://127.0.0.1:{live_server.port}"
        assert main(["stats", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "status=ok" in out
        assert "repro_http_requests_total" in out
        assert "repro_batcher_rows_scored_total" in out

    def test_stats_raw_dumps_the_exposition(self, live_server, capsys):
        url = f"http://127.0.0.1:{live_server.port}"
        assert main(["stats", "--url", url, "--raw"]) == 0
        out = capsys.readouterr().out
        validate_exposition(out, require=("repro_http_requests_total",))

    def test_stats_unreachable_server_fails_loudly(self):
        with pytest.raises(SystemExit, match="could not scrape"):
            main(["stats", "--url", "http://127.0.0.1:9", "--timeout", "0.5"])
