"""Shard/worker invariance of the parallel sharded frontier walks.

The parallel layer's contract is exactness: for any shard count,
worker count, and backend, the stacked per-shard count matrices must
be bit-identical to one serial :func:`frontier_count_walk` — on
vector, string, and tree data, including the regression class the
flat-tree tests pin (radius 0 with duplicates, radii tying exact
pairwise distances).  Process workers must *attach* to a published
mmap artifact, not materialize private copies.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from test_flat_trees import boundary_radii

from repro import McCatch
from repro.api import make_estimator
from repro.engine import BatchQueryEngine, ShardedWalkExecutor, supports_sharding
from repro.engine.parallel import _get_pool, attachment_report
from repro.index import (
    BallTree,
    BruteForceIndex,
    CoverTree,
    MTree,
    SlimTree,
    VPTree,
)
from repro.io.indexes import save_index
from repro.metric.base import MetricSpace
from repro.metric.strings import levenshtein
from repro.metric.trees import LabeledTree, tree_edit_distance

FLAT_KINDS = [VPTree, BallTree, CoverTree, MTree, SlimTree]
WORKER_COUNTS = [1, 2, 3, 7]


@pytest.fixture(scope="module")
def vspace():
    """Vector data with duplicates and a tight planted pair."""
    rng = np.random.default_rng(5)
    X = np.vstack(
        [
            rng.normal(0, 1, (60, 2)),
            np.zeros((5, 2)),  # exact duplicates
            [[7.0, 7.0], [7.0, 7.0], [7.2, 7.0]],  # duplicate outlier pair
        ]
    )
    return MetricSpace(X)


@pytest.fixture(scope="module")
def sspace():
    rng = np.random.default_rng(9)
    alphabet = list("ABCD")
    words = ["".join(rng.choice(alphabet, size=rng.integers(1, 8))) for _ in range(30)]
    words += ["AAAA"] * 3  # duplicates for the radius-0 class
    return MetricSpace(words, levenshtein)


@pytest.fixture(scope="module")
def tspace():
    rng = np.random.default_rng(13)

    def random_tree(depth: int) -> LabeledTree:
        label = "abcd"[int(rng.integers(4))]
        if depth == 0:
            return LabeledTree(label)
        children = [random_tree(depth - 1) for _ in range(int(rng.integers(0, 3)))]
        return LabeledTree(label, children)

    trees = [random_tree(2) for _ in range(12)]
    trees += [LabeledTree("a", [LabeledTree("b")])] * 2  # duplicates
    return MetricSpace(trees, tree_edit_distance)


SPACES = ["vspace", "sspace", "tspace"]


class TestWorkerShardInvariance:
    """Counts are bit-identical for every worker/shard configuration."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("fixture", SPACES)
    def test_worker_count_invariance(self, workers, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        tree = VPTree(space)
        expected = tree.count_within_many(q, radii)
        got = ShardedWalkExecutor(
            tree, workers=workers, backend="thread"
        ).count_within_many(q, radii)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("cls", FLAT_KINDS)
    def test_every_flat_index_kind(self, cls, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        tree = cls(vspace)
        expected = tree.count_within_many(q, radii)
        got = ShardedWalkExecutor(
            tree, workers=3, backend="thread"
        ).count_within_many(q, radii)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("shards", [1, 2, 5, 17, 1000])
    def test_shard_count_invariance(self, shards, vspace):
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        tree = BallTree(vspace)
        expected = tree.count_within_many(q, radii)
        got = ShardedWalkExecutor(
            tree, workers=2, shards=shards, backend="thread"
        ).count_within_many(q, radii)
        assert np.array_equal(got, expected)

    def test_subset_queries_and_single_radius(self, vspace):
        tree = VPTree(vspace)
        q = np.arange(1, len(vspace), 3)
        ex = ShardedWalkExecutor(tree, workers=2, shards=3, backend="thread")
        for r in boundary_radii(vspace):
            assert np.array_equal(
                ex.count_within(q, float(r)), tree.count_within(q, float(r))
            )

    def test_index_sharded_method(self, vspace):
        tree = VPTree(vspace)
        radii = boundary_radii(vspace)
        q = np.arange(len(vspace))
        got = tree.sharded(workers=2, shards=4).count_within_many(q, radii)
        assert np.array_equal(got, tree.count_within_many(q, radii))


class TestProcessBackend:
    """Process workers attach via mmap and still count bit-identically."""

    @pytest.mark.parametrize("fixture", SPACES)
    def test_bit_identical(self, fixture, request):
        space = request.getfixturevalue(fixture)
        radii = boundary_radii(space)
        q = np.arange(len(space))
        tree = VPTree(space)
        expected = tree.count_within_many(q, radii)
        with ShardedWalkExecutor(
            tree, workers=2, shards=3, backend="process"
        ) as ex:
            assert np.array_equal(ex.count_within_many(q, radii), expected)

    def test_auto_backend_picks_process_for_object_metrics(self, sspace, vspace):
        assert ShardedWalkExecutor(VPTree(sspace), workers=2).backend == "process"
        assert ShardedWalkExecutor(VPTree(vspace), workers=2).backend == "thread"

    def test_workers_attach_to_mmap_artifact(self, vspace):
        """The walk arrays a worker sees are views of the published
        archive — attached through the page cache, not materialized."""
        tree = VPTree(vspace)
        with ShardedWalkExecutor(tree, workers=2, backend="process") as ex:
            report = (
                _get_pool("process", 2)
                .submit(attachment_report, str(ex.artifact))
                .result()
            )
        assert report["pid"] != os.getpid()
        assert report["tree_mmap"] is True
        assert report["data_mmap"] is True
        assert report["n"] == len(vspace)

    def test_attaches_to_registry_published_artifact(self, vspace, tmp_path):
        """An artifact published ahead of time (registry-style) is
        attached as-is; the executor writes nothing of its own."""
        tree = VPTree(vspace)
        published = save_index(tree, tmp_path / "index.npz")
        ex = ShardedWalkExecutor(
            tree, workers=2, shards=3, backend="process", artifact=published
        )
        q = np.arange(len(vspace))
        radii = boundary_radii(vspace)
        assert np.array_equal(
            ex.count_within_many(q, radii), tree.count_within_many(q, radii)
        )
        assert ex.artifact == published
        assert ex._owned_artifact is None  # nothing self-published
        report = (
            _get_pool("process", 2)
            .submit(attachment_report, str(published))
            .result()
        )
        assert report["tree_mmap"] is True

    def test_object_space_artifact_carries_no_data(self, sspace, tmp_path):
        """Object spaces ship structure only; elements travel once as
        the space payload, and the worker rebuilds the same counts."""
        tree = VPTree(sspace)
        ex = ShardedWalkExecutor(tree, workers=2, shards=2, backend="process")
        q = np.arange(len(sspace))
        radii = boundary_radii(sspace)
        assert np.array_equal(
            ex.count_within_many(q, radii), tree.count_within_many(q, radii)
        )
        items, metric = ex._space_payload()
        assert items == list(sspace.data) and metric is levenshtein
        ex.close()


class TestEngineParallelMode:
    def test_self_join_counts_all_modes_agree(self, vspace):
        radii = boundary_radii(vspace)
        radii = np.unique(radii)[1:]  # strictly increasing, as SELFJOINC needs
        tree = VPTree(vspace)
        c = 10
        reference = BatchQueryEngine(tree, mode="per_point").self_join_counts(
            radii, max_cardinality=c
        )
        batched = BatchQueryEngine(tree, mode="batched").self_join_counts(
            radii, max_cardinality=c
        )
        parallel = BatchQueryEngine(tree, mode="parallel", workers=3).self_join_counts(
            radii, max_cardinality=c
        )
        assert np.array_equal(batched, reference)
        assert np.array_equal(parallel, reference)

    def test_first_nonempty_radius_agrees(self, vspace):
        radii = np.unique(boundary_radii(vspace))
        tree = VPTree(vspace, ids=np.arange(0, len(vspace), 2))
        queries = np.arange(1, len(vspace), 2)
        reference = BatchQueryEngine(tree, mode="per_point").first_nonempty_radius(
            queries, radii
        )
        parallel = BatchQueryEngine(
            tree, mode="parallel", workers=2
        ).first_nonempty_radius(queries, radii)
        assert np.array_equal(parallel, reference)

    def test_parallel_falls_back_without_flat_storage(self, vspace):
        brute = BruteForceIndex(vspace)
        assert not supports_sharding(brute)
        engine = BatchQueryEngine(brute, mode="parallel", workers=2)
        assert engine._sharded is None  # serial batched fallback
        radii = np.unique(boundary_radii(vspace))
        assert np.array_equal(
            engine.self_join_counts(radii),
            BatchQueryEngine(brute, mode="batched").self_join_counts(radii),
        )

    def test_supports_sharding_does_not_trigger_freeze(self, vspace):
        tree = MTree(vspace, capacity=4, build="insert")
        assert supports_sharding(tree)
        assert tree._flat is None  # asking the question froze nothing


class TestMcCatchParallel:
    def test_fit_bit_identical_to_serial(self, blob_with_mc):
        X, _ = blob_with_mc
        serial = McCatch(index="vptree").fit(X)
        parallel = McCatch(index="vptree", engine_mode="parallel", workers=3).fit(X)
        assert np.array_equal(serial.point_scores, parallel.point_scores)
        assert len(serial.microclusters) == len(parallel.microclusters)
        for a, b in zip(serial.microclusters, parallel.microclusters):
            assert np.array_equal(a.indices, b.indices)
            assert a.score == b.score

    def test_workers_requires_parallel_mode(self):
        with pytest.raises(ValueError, match="workers"):
            McCatch(workers=4)

    def test_parallel_requires_flat_index(self, blob_with_mc):
        """A pool with nothing to share must fail loudly, not run serial
        (the Euclidean 'auto' default builds scipy's cKDTree)."""
        X, _ = blob_with_mc
        for kind in ("auto", "ckdtree", "brute"):
            with pytest.raises(ValueError, match="flat-backed"):
                McCatch(index=kind, engine_mode="parallel").fit(X)

    def test_spec_surfaces_parallel_engine(self):
        estimator = make_estimator("mccatch?engine=parallel&workers=2")
        assert estimator.detector.engine_mode == "parallel"
        assert estimator.detector.workers == 2
        # canonical round trip
        assert make_estimator(estimator.spec).spec == estimator.spec

    def test_cli_detect_workers(self, tmp_path, capsys):
        from repro.cli import main

        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (80, 2)), [[9.0, 9.0]]])
        path = tmp_path / "data.csv"
        np.savetxt(path, X, delimiter=",")
        assert main(["detect", str(path), "--workers", "2"]) == 0
        assert "microclusters" in capsys.readouterr().out


class TestExecutorValidation:
    def test_rejects_non_flat_index(self, vspace):
        with pytest.raises(TypeError, match="FlatTree"):
            ShardedWalkExecutor(BruteForceIndex(vspace))

    def test_rejects_bad_workers_and_backend(self, vspace):
        tree = VPTree(vspace)
        with pytest.raises(ValueError, match="workers"):
            ShardedWalkExecutor(tree, workers=0)
        with pytest.raises(ValueError, match="shards"):
            ShardedWalkExecutor(tree, shards=0)
        with pytest.raises(ValueError, match="backend"):
            ShardedWalkExecutor(tree, backend="fibers")

    def test_thread_backend_publishes_no_artifact(self, vspace):
        ex = ShardedWalkExecutor(VPTree(vspace), workers=2, backend="thread")
        assert ex.artifact is None


class TestPairsWithinDefault:
    """The vectorized chunked default matches the naive upper triangle."""

    @pytest.mark.parametrize("fixture", SPACES)
    def test_matches_naive(self, fixture, request):
        space = request.getfixturevalue(fixture)
        index = VPTree(space)  # inherits the MetricIndex default
        ids = index.ids
        for radius in (0.0, float(np.median(boundary_radii(space)))):
            expected = []
            for a in range(ids.size - 1):
                d = space.distances(int(ids[a]), ids[a + 1 :])
                for j in ids[a + 1 :][d <= radius]:
                    i = int(ids[a])
                    expected.append((min(i, int(j)), max(i, int(j))))
            assert index.pairs_within(radius) == expected

    def test_chunked_blocks_match_single_block(self, vspace):
        index = BruteForceIndex(vspace)
        radius = 1.5
        expected = index.pairs_within(radius)
        old_chunk = type(index)._CHUNK
        try:
            type(index)._CHUNK = 7  # force many partial blocks
            assert index.pairs_within(radius) == expected
        finally:
            type(index)._CHUNK = old_chunk
