"""Fault injection and degenerate inputs across the public API.

Production data is messy: NaN/inf features, constant columns, single
elements, duplicate-saturated sets, misbehaving user metrics.  Every
entry point must either handle the case or fail *at the boundary* with
a clear message — never deep inside a join with an inscrutable trace.
"""

import numpy as np
import pytest

from repro import McCatch, MetricSpace, StreamingMcCatch, detect_microclusters
from repro.index import build_index
from repro.metric.strings import levenshtein


class TestDegenerateVectorData:
    def test_single_point(self):
        # One element: no neighbors, no diameter — a clean empty verdict.
        result = McCatch().fit(np.array([[1.0, 2.0]]))
        assert result.n == 1
        assert result.microclusters == [] or result.n_outliers <= 1

    def test_two_identical_points(self):
        result = McCatch().fit(np.zeros((2, 3)))
        assert result.n == 2
        assert np.isfinite(result.point_scores).all()

    def test_all_identical_points(self):
        result = McCatch().fit(np.ones((100, 2)))
        # Zero diameter: nothing can be anomalous.
        assert result.n_outliers == 0

    def test_constant_feature_column(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.normal(size=200), np.full(200, 7.0)])
        X = np.vstack([X, [[30.0, 7.0]]])
        result = McCatch().fit(X)
        assert 200 in set(map(int, result.outlier_indices))

    def test_collinear_data(self):
        X = np.column_stack([np.linspace(0, 1, 150), np.linspace(0, 2, 150)])
        X = np.vstack([X, [[5.0, 10.0]]])
        result = McCatch().fit(X)
        assert np.isfinite(result.point_scores).all()
        assert 150 in set(map(int, result.outlier_indices))

    def test_extreme_magnitudes(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(150, 2)) * 1e12
        X[-1] = [1e13, 1e13]
        result = McCatch().fit(X)
        assert np.isfinite(result.point_scores).all()

    def test_tiny_magnitudes(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(150, 2)) * 1e-12
        result = McCatch().fit(X)
        assert np.isfinite(result.point_scores).all()

    def test_one_dimensional_input_reshaped(self):
        values = np.concatenate([np.random.default_rng(3).normal(size=100), [50.0]])
        result = McCatch().fit(values)
        assert result.n == 101
        assert 100 in set(map(int, result.outlier_indices))


class TestInvalidInputs:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError, match="at least one element"):
            McCatch().fit(np.zeros((0, 2)))

    def test_3d_array_rejected(self):
        with pytest.raises(ValueError, match="2-d"):
            McCatch().fit(np.zeros((4, 2, 2)))

    def test_object_data_without_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            McCatch().fit(["a", "b", "c"])

    def test_non_callable_metric_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            McCatch().fit(["a", "b"], metric="levenshtein")

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            McCatch(n_radii=1)
        with pytest.raises(ValueError):
            McCatch(max_slope=-0.1)
        with pytest.raises(ValueError):
            McCatch(max_cardinality_fraction=0.0)
        with pytest.raises(ValueError):
            McCatch(max_cardinality=0)
        with pytest.raises(ValueError):
            McCatch(transformation_cost=-1.0).fit(np.zeros((3, 2)))

    def test_unknown_index_kind(self):
        with pytest.raises(ValueError, match="unknown index kind"):
            McCatch(index="quadtree").fit(np.zeros((5, 2)) + np.arange(5)[:, None])


class TestMisbehavingMetrics:
    def test_metric_raising_propagates_cleanly(self):
        def broken(a, b):
            raise RuntimeError("distance backend is down")

        with pytest.raises(RuntimeError, match="backend is down"):
            McCatch(index="brute").fit(["a", "b", "c", "d"], metric=broken)

    def test_slow_but_correct_metric_works(self):
        calls = {"n": 0}

        def counting(a, b):
            calls["n"] += 1
            return levenshtein(a, b)

        words = ["abc", "abd", "abe", "xyz"] * 10 + ["qqqqqqqq", "qqqqqqqq"]
        result = McCatch(index="vptree").fit(words, metric=counting)
        assert calls["n"] > 0
        assert result.n == 42

    def test_zero_metric_everywhere_returns_empty_verdict(self):
        # All elements identical under the metric: the diameter is zero,
        # no radius ladder exists, and nothing can be anomalous.
        result = McCatch(index="brute").fit(list("abcdefgh"), metric=lambda a, b: 0.0)
        assert result.n_outliers == 0
        assert np.isinf(result.cutoff.value)


class TestDuplicateSaturation:
    @pytest.mark.parametrize("kind", ["vptree", "mtree", "slimtree", "covertree",
                                      "balltree", "laesa", "brute"])
    def test_every_index_survives_duplicates(self, kind):
        """Two distinct inlier values saturate every split heuristic.

        This degenerate histogram (every inlier's 1NN distance is 0)
        keeps the MDL cutoff from flagging anything — what matters here
        is that no tree crashes and the per-point ranking still puts
        the planted word on top.
        """
        words = ["alpha", "beta"] * 50 + ["omegaomega"]
        result = McCatch(index=kind).fit(words, metric=levenshtein)
        assert np.isfinite(result.point_scores).all()
        assert int(np.argmax(result.point_scores)) == 100

    def test_duplicated_microcluster_detected(self):
        rng = np.random.default_rng(4)
        X = np.vstack([rng.normal(0, 1, (300, 2)), np.tile([[9.0, 9.0]], (5, 1))])
        result = McCatch().fit(X)
        planted = {300, 301, 302, 303, 304}
        grouped = [m for m in result.microclusters
                   if planted <= set(map(int, m.indices))]
        assert grouped and grouped[0].cardinality == 5


class TestStreamingRobustness:
    def test_alternating_empty_batches(self):
        stream = StreamingMcCatch(min_fit_size=32)
        rng = np.random.default_rng(5)
        for i in range(6):
            batch = rng.normal(size=(0 if i % 2 else 30, 2))
            stream.update(batch)
        assert stream.n_seen == 90

    def test_single_row_batches(self):
        rng = np.random.default_rng(6)
        stream = StreamingMcCatch(min_fit_size=32)
        for _ in range(64):
            stream.update(rng.normal(size=(1, 2)))
        assert len(stream) == 64
        assert stream.result is not None


class TestIndexBoundaryQueries:
    @pytest.mark.parametrize("kind", ["vptree", "covertree", "balltree", "laesa"])
    def test_negative_radius_counts_nothing(self, kind):
        rng = np.random.default_rng(7)
        space = MetricSpace(rng.normal(size=(30, 2)))
        idx = build_index(space, kind=kind)
        assert (idx.count_within(np.arange(30), -1.0) == 0).all()

    @pytest.mark.parametrize("kind", ["vptree", "covertree", "balltree", "laesa"])
    def test_huge_radius_counts_everything(self, kind):
        rng = np.random.default_rng(8)
        space = MetricSpace(rng.normal(size=(30, 2)))
        idx = build_index(space, kind=kind)
        assert (idx.count_within(np.arange(30), 1e9) == 30).all()


class TestConvenienceEntrypoint:
    def test_detect_microclusters_forwards_kwargs(self):
        rng = np.random.default_rng(9)
        X = np.vstack([rng.normal(0, 1, (200, 2)), [[9.0, 9.0]]])
        result = detect_microclusters(X, n_radii=12, index="vptree")
        assert 200 in set(map(int, result.outlier_indices))
