"""repro.serve: micro-batching, the HTTP boundary, workers, hot swap."""

import asyncio
import os

import numpy as np
import pytest

from repro.api import ModelRegistry, make_estimator
from repro.cli import main
from repro.serve import (
    BatcherClosed,
    BatcherOverloaded,
    MicroBatcher,
    RegistryWatcher,
    ScoreClient,
    ScoringServer,
    ScoringWorkerPool,
)

SPEC = "mccatch?index=vptree"


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    return np.vstack([rng.normal(0.0, 1.0, (150, 3)), [[9.0, 9.0, 9.0]]])


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(11)
    return np.vstack([rng.normal(0.0, 1.0, (40, 3)), [[55.0, -55.0, 0.0]]])


@pytest.fixture(scope="module")
def published(dataset, tmp_path_factory):
    """(registry, record, model): one published McCatch artifact."""
    registry = ModelRegistry(tmp_path_factory.mktemp("serve-registry"))
    model = make_estimator(SPEC).fit(dataset)
    record = registry.publish(model)
    return registry, record, model


def run(coro):
    return asyncio.run(coro)


async def _started(model, record=None, **kwargs):
    """A bound server on a free port (record wires registry metadata)."""
    meta = {}
    if record is not None:
        meta = dict(
            artifact=record.path,
            spec=record.spec,
            version=record.version,
            fingerprint=record.fingerprint,
        )
    server = ScoringServer(model, port=0, **meta, **kwargs)
    await server.start()
    return server


class TestMicroBatcher:
    def test_coalesces_concurrent_rows_into_one_engine_call(self):
        calls = []

        async def score(rows):
            calls.append(rows.shape[0])
            return rows.sum(axis=1)

        async def inner():
            batcher = MicroBatcher(score, window_s=0.05, max_batch=256)
            rows = [np.array([[float(i), 1.0]]) for i in range(32)]
            results = await asyncio.gather(*(batcher.submit(r) for r in rows))
            for i, (scores, batched) in enumerate(results):
                assert scores[0] == float(i) + 1.0
            await batcher.drain()
            return results

        results = run(inner())
        # everything submitted inside one window coalesced: far fewer
        # engine calls than requests, and requests observed their batch
        assert len(calls) < 32
        assert max(calls) > 1
        assert max(batched for _, batched in results) == max(calls)

    def test_window_zero_serves_per_request(self):
        calls = []

        async def score(rows):
            calls.append(rows.shape[0])
            return rows.sum(axis=1)

        async def inner():
            batcher = MicroBatcher(score, window_s=0.0, max_batch=256)
            await asyncio.gather(*(
                batcher.submit(np.array([[float(i)]])) for i in range(16)
            ))
            await batcher.drain()

        run(inner())
        assert calls == [1] * 16

    def test_max_batch_caps_every_engine_call(self):
        calls = []

        async def score(rows):
            calls.append(rows.shape[0])
            return rows.sum(axis=1)

        async def inner():
            batcher = MicroBatcher(score, window_s=0.05, max_batch=8)
            await asyncio.gather(*(
                batcher.submit(np.array([[float(i)]])) for i in range(32)
            ))
            await batcher.drain()

        run(inner())
        assert sum(calls) == 32
        assert max(calls) <= 8

    def test_scoring_error_reaches_every_coalesced_waiter(self):
        async def score(rows):
            raise RuntimeError("engine exploded")

        async def inner():
            batcher = MicroBatcher(score, window_s=0.05, max_batch=256)
            results = await asyncio.gather(
                *(batcher.submit(np.array([[1.0]])) for _ in range(5)),
                return_exceptions=True,
            )
            await batcher.drain()
            return results

        results = run(inner())
        assert len(results) == 5
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_submit_after_drain_is_refused(self):
        async def score(rows):
            return rows.sum(axis=1)

        async def inner():
            batcher = MicroBatcher(score, window_s=0.0)
            await batcher.submit(np.array([[1.0]]))
            await batcher.drain()
            with pytest.raises(BatcherClosed):
                await batcher.submit(np.array([[2.0]]))

        run(inner())

    def test_knob_validation(self):
        async def score(rows):
            return rows

        with pytest.raises(ValueError, match="window_s"):
            MicroBatcher(score, window_s=-0.1)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(score, max_batch=0)
        with pytest.raises(ValueError, match="max_pending"):
            MicroBatcher(score, max_pending=0)


class TestBackpressure:
    def test_submit_past_max_pending_is_shed_not_enqueued(self):
        release = asyncio.Event()

        async def slow_score(rows):
            await release.wait()
            return rows.sum(axis=1)

        async def inner():
            batcher = MicroBatcher(
                slow_score, window_s=0.0, max_batch=256, max_pending=4
            )
            accepted = [
                asyncio.ensure_future(batcher.submit(np.array([[0.0]])))
            ]
            await asyncio.sleep(0.05)  # collector holds the head in-dispatch
            for i in range(4):  # fill the queue exactly to max_pending
                accepted.append(
                    asyncio.ensure_future(batcher.submit(np.array([[float(i)]])))
                )
                await asyncio.sleep(0)
            assert batcher.pending == batcher.max_pending
            shed = []
            for _ in range(3):
                with pytest.raises(BatcherOverloaded) as err:
                    await batcher.submit(np.array([[42.0]]))
                shed.append(err.value)
            release.set()  # overload over: everything accepted still answers
            results = await asyncio.gather(*accepted)
            await batcher.drain()
            return batcher, shed, results

        batcher, shed, results = run(inner())
        assert batcher.requests_shed == 3
        assert all(exc.retry_after >= 1.0 for exc in shed)
        # every accepted request scored correctly despite the overload
        assert all(scores.shape == (1,) for scores, _ in results)

    def test_unbounded_by_default(self):
        async def score(rows):
            return rows.sum(axis=1)

        async def inner():
            batcher = MicroBatcher(score, window_s=0.0)
            assert batcher.max_pending is None
            await asyncio.gather(*(
                batcher.submit(np.array([[float(i)]])) for i in range(64)
            ))
            await batcher.drain()
            return batcher

        batcher = run(inner())
        assert batcher.requests_shed == 0

    def test_http_overload_sheds_429_with_retry_after_then_drains(
        self, published, batch
    ):
        """Overload at the HTTP boundary: the capped queue sheds with a
        structured 429 + Retry-After while every accepted request still
        scores — and scores bit-identically to the unloaded server."""
        _, record, model = published
        expected = np.asarray(model.score_batch(batch[:1]))

        async def inner():
            server = await _started(
                model, record, window_s=0.05, max_batch=2, max_pending=2
            )
            try:
                row = batch[:1].tolist()[0]
                clients = [
                    await ScoreClient.connect("127.0.0.1", server.port)
                    for _ in range(12)
                ]

                async def one(client):
                    status, payload = await client.request(
                        "POST", "/score", {"row": row}
                    )
                    return status, payload, dict(client.last_headers)

                outcomes = await asyncio.gather(*(one(c) for c in clients))
                health = await clients[0].request("GET", "/healthz")
                for client in clients:
                    await client.close()
                return outcomes, health[1]
            finally:
                await server.stop()

        outcomes, health = run(inner())
        ok = [o for o in outcomes if o[0] == 200]
        shed = [o for o in outcomes if o[0] == 429]
        assert len(ok) + len(shed) == 12
        assert ok, "the accepted side of the overload must still answer"
        for _, payload, _ in ok:
            np.testing.assert_array_equal(
                np.asarray(payload["scores"]), expected
            )
        for _, payload, headers in shed:
            assert payload["error"]["code"] == "overloaded"
            assert int(headers["retry-after"]) >= 1
        assert health["requests_shed"] == len(shed)
        assert health["max_pending"] == 2

    def test_drain_under_overload_answers_all_accepted_requests(
        self, published, batch
    ):
        """Shutdown while the queue is at its cap: every accepted
        request resolves with real scores before the server closes."""
        _, record, model = published

        async def inner():
            server = await _started(
                model, record, window_s=0.02, max_batch=1, max_pending=3
            )
            row = batch[:1].tolist()[0]
            clients = [
                await ScoreClient.connect("127.0.0.1", server.port)
                for _ in range(8)
            ]
            tasks = [
                asyncio.ensure_future(c.request("POST", "/score", {"row": row}))
                for c in clients
            ]
            await asyncio.sleep(0.05)  # let the queue fill / shed
            await server.stop()
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            for client in clients:
                await client.close()
            return outcomes

        outcomes = run(inner())
        statuses = [o[0] for o in outcomes if not isinstance(o, Exception)]
        # accepted requests answered 200 with scores; shed ones answered
        # 429; nobody hung or got a torn connection mid-drain
        assert statuses and set(statuses) <= {200, 429}


class TestServerScoring:
    def test_32_concurrent_single_rows_bit_identical(self, published, batch):
        # The PR's acceptance scenario: under >= 32 concurrent
        # single-row clients the coalesced scores equal direct
        # score_batch bit for bit, and coalescing actually happened.
        registry, record, model = published
        direct = model.score_batch(batch)

        async def inner():
            server = await _started(model, record, window_s=0.02)
            try:
                async def one(i):
                    client = await ScoreClient.connect("127.0.0.1", server.port)
                    try:
                        status, payload = await client.request(
                            "POST", "/score", {"row": batch[i].tolist()}
                        )
                    finally:
                        await client.close()
                    return i, status, payload

                results = await asyncio.gather(*(one(i) for i in range(len(batch))))
            finally:
                await server.stop()
            return results, server.batcher.mean_batch_rows

        results, mean_rows = run(inner())
        assert len(results) >= 32
        for i, status, payload in results:
            assert status == 200
            assert payload["scores"] == [direct[i]]  # bit-identical via json
        assert mean_rows > 1.0  # requests really rode shared engine batches
        assert any(p["batched_rows"] > 1 for _, _, p in results)

    def test_multi_row_request_and_counters(self, published, batch):
        registry, record, model = published
        direct = model.score_batch(batch)

        async def inner():
            server = await _started(model, record, window_s=0.005)
            client = await ScoreClient.connect("127.0.0.1", server.port)
            try:
                scores = await client.score_rows(batch)
                status, health = await client.request("GET", "/healthz")
            finally:
                await client.close()
                await server.stop()
            return scores, status, health

        scores, status, health = run(inner())
        assert np.array_equal(scores, direct)
        assert status == 200
        assert health["status"] == "ok"
        assert health["rows_scored"] == len(batch)
        assert health["batches_dispatched"] == 1
        assert health["workers"] == 0

    def test_model_endpoint_reports_registry_metadata(self, published, dataset):
        registry, record, model = published

        async def inner():
            server = await _started(model, record, window_s=0.0)
            client = await ScoreClient.connect("127.0.0.1", server.port)
            try:
                return await client.request("GET", "/model")
            finally:
                await client.close()
                await server.stop()

        status, meta = run(inner())
        assert status == 200
        assert meta["spec"] == SPEC
        assert meta["version"] == 1
        assert meta["fingerprint"] == record.fingerprint
        assert meta["n_fitted"] == len(dataset)
        assert meta["dimensionality"] == dataset.shape[1]

    def test_window_zero_over_http_is_per_request(self, published, batch):
        registry, record, model = published

        async def inner():
            server = await _started(model, record, window_s=0.0)
            try:
                async def one(i):
                    client = await ScoreClient.connect("127.0.0.1", server.port)
                    try:
                        _, payload = await client.request(
                            "POST", "/score", {"row": batch[i].tolist()}
                        )
                        return payload["batched_rows"]
                    finally:
                        await client.close()

                sizes = await asyncio.gather(*(one(i) for i in range(8)))
            finally:
                await server.stop()
            return sizes

        assert run(inner()) == [1] * 8

    def test_server_requires_vector_training_data(self):
        class NoData:
            training_data = None
            spec = None

            @property
            def n_fitted(self):
                return 0

        with pytest.raises(TypeError, match="training"):
            ScoringServer(NoData())


class TestServingBoundary:
    """Malformed input comes back as structured 4xx, never a 500."""

    @pytest.fixture()
    def client_server(self, published):
        registry, record, model = published
        return model, record

    def _exchange(self, model, record, requests, **server_kwargs):
        """Run several raw exchanges over one keep-alive connection."""

        async def inner():
            server = await _started(model, record, window_s=0.0, **server_kwargs)
            client = await ScoreClient.connect("127.0.0.1", server.port)
            out = []
            try:
                for method, path, payload in requests:
                    out.append(await client.request(method, path, payload))
            finally:
                await client.close()
                await server.stop()
            return out

        return run(inner())

    def test_malformed_json_is_400(self, client_server):
        model, record = client_server

        async def inner():
            server = await _started(model, record, window_s=0.0)
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                body = b"{not json"
                writer.write(
                    b"POST /score HTTP/1.1\r\nHost: x\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                await writer.drain()
                status_line = await reader.readline()
            finally:
                writer.close()
                await server.stop()
            return status_line

        assert b"400" in run(inner())

    def test_wrong_shape_rows_are_400(self, client_server):
        model, record = client_server
        responses = self._exchange(model, record, [
            ("POST", "/score", {"rows": [[1.0]]}),               # wrong width
            ("POST", "/score", {"rows": [[1.0, 2.0], [3.0]]}),   # ragged
            ("POST", "/score", {"rows": []}),                    # empty
            ("POST", "/score", {"rows": [[[1.0, 2.0, 3.0]]]}),   # 3-d
            ("POST", "/score", {"rows": [["a", "b", "c"]]}),     # non-numeric
            ("POST", "/score", {"vector": [1.0, 2.0, 3.0]}),     # wrong key
            ("POST", "/score", {"row": [1.0] * 3,
                                "rows": [[1.0] * 3]}),           # both keys
        ])
        for status, payload in responses:
            assert status == 400
            assert payload["error"]["code"] in ("bad_batch", "bad_request")
        # the width error reuses the shared as_batch_rows message
        assert "3-dimensional data" in responses[0][1]["error"]["message"]

    def test_non_finite_rows_are_400(self, client_server):
        model, record = client_server
        responses = self._exchange(model, record, [
            ("POST", "/score", {"row": [float("nan"), 0.0, 0.0]}),
            ("POST", "/score", {"row": [float("inf"), 0.0, 0.0]}),
            ("POST", "/score", {"rows": [[0.0, 0.0, 0.0],
                                         [0.0, float("-inf"), 0.0]]}),
        ])
        for status, payload in responses:
            assert status == 400
            assert payload["error"]["code"] == "non_finite"

    def test_oversized_batch_is_413(self, client_server):
        model, record = client_server
        rows = [[0.0, 0.0, 0.0]] * 9
        (status, payload), = self._exchange(
            model, record, [("POST", "/score", {"rows": rows})], max_rows=8
        )
        assert status == 413
        assert payload["error"]["code"] == "too_many_rows"

    def test_unknown_route_and_wrong_method(self, client_server):
        model, record = client_server
        responses = self._exchange(model, record, [
            ("GET", "/nope", None),
            ("GET", "/score", None),
            ("POST", "/healthz", None),
            ("POST", "/model", None),
        ])
        assert [s for s, _ in responses] == [404, 405, 405, 405]
        assert responses[0][1]["error"]["code"] == "not_found"
        assert responses[1][1]["error"]["code"] == "method_not_allowed"

    def test_connection_survives_a_4xx(self, client_server, batch):
        # keep-alive: a rejected request must not poison the connection
        model, record = client_server
        direct = model.score_batch(batch[:1])
        responses = self._exchange(model, record, [
            ("POST", "/score", {"rows": [[1.0]]}),
            ("POST", "/score", {"rows": batch[:1].tolist()}),
        ])
        assert responses[0][0] == 400
        assert responses[1][0] == 200
        assert responses[1][1]["scores"] == [direct[0]]


class TestWorkers:
    def test_worker_scores_bit_identical(self, published, batch):
        registry, record, model = published
        direct = model.score_batch(batch)

        async def inner():
            server = await _started(model, record, window_s=0.005, workers=2)
            client = await ScoreClient.connect("127.0.0.1", server.port)
            try:
                scores = await client.score_rows(batch)
                # one connection is sequential; concurrency uses many clients
                singles = [await client.score_row(batch[i]) for i in range(4)]
            finally:
                await client.close()
                await server.stop()
            return scores, singles

        scores, singles = run(inner())
        assert np.array_equal(scores, direct)
        assert singles == [direct[i] for i in range(4)]

    def test_attachment_report_proves_mmap_sharing(self, published):
        registry, record, model = published
        pool = ScoringWorkerPool(2)
        try:
            reports = pool.attachment_reports(str(record.path), probes=2)
        finally:
            pool.shutdown()
        assert len(reports) == 2
        for report in reports:
            assert report["pid"] != os.getpid()  # a real worker process
            assert report["data_mmap"] is True   # data rows: views of the file
            assert report["index_mmap"] is True  # tree arrays: views of the file
            assert report["n_fitted"] == model.n_fitted

    def test_self_published_artifact_when_no_registry(self, published, batch):
        # workers without a registry artifact: the server publishes its
        # own temp artifact and cleans it up on stop
        registry, record, model = published
        direct = model.score_batch(batch)

        async def inner():
            server = await _started(model, window_s=0.0, workers=1)
            artifact = server.served.artifact
            assert artifact is not None and os.path.exists(artifact)
            client = await ScoreClient.connect("127.0.0.1", server.port)
            try:
                scores = await client.score_rows(batch)
            finally:
                await client.close()
                await server.stop()
            return scores, artifact

        scores, artifact = run(inner())
        assert np.array_equal(scores, direct)
        assert not os.path.exists(artifact)  # cleaned up with the server

    def test_pool_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ScoringWorkerPool(0)


class TestHotSwap:
    def test_swap_mid_traffic_is_atomic_per_batch(self, published, dataset, batch):
        registry, record, model = published
        v_old = model.score_batch(batch)
        model2 = make_estimator(SPEC).fit(dataset + 100.0)
        v_new = model2.score_batch(batch)

        async def inner():
            server = await _started(model, record, window_s=0.01)
            watcher = RegistryWatcher(
                server, registry, record.spec, record.fingerprint, poll_s=0.05
            )
            observed = []
            stop_traffic = asyncio.Event()

            async def traffic():
                client = await ScoreClient.connect("127.0.0.1", server.port)
                try:
                    i = 0
                    while not stop_traffic.is_set():
                        scores = await client.score_rows(batch[i % len(batch)][None])
                        observed.append((i % len(batch), float(scores[0])))
                        i += 1
                finally:
                    await client.close()

            try:
                watcher.start()
                drivers = [asyncio.create_task(traffic()) for _ in range(4)]
                await asyncio.sleep(0.2)  # traffic against v1
                # publish v2 of the same key mid-traffic
                registry.publish(model2, fingerprint=record.fingerprint)
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    if server.swaps:
                        break
                await asyncio.sleep(0.2)  # traffic against v2
                stop_traffic.set()
                await asyncio.gather(*drivers)
                client = await ScoreClient.connect("127.0.0.1", server.port)
                final = await client.score_rows(batch)
                _, meta = await client.request("GET", "/model")
                await client.close()
            finally:
                await watcher.stop()
                await server.stop()
            return observed, final, meta, server.swaps, watcher.swapped_versions

        observed, final, meta, swaps, swapped = run(inner())
        assert swaps == 1
        assert swapped == [2]
        assert meta["version"] == 2
        assert np.array_equal(final, v_new)  # the new model serves
        # every response came from exactly one generation — bit-identical
        # to v1 or to v2, never a blend (swap lands between batches)
        assert len(observed) > 20
        assert all(score == v_old[i] or score == v_new[i] for i, score in observed)
        assert any(score == v_old[i] for i, score in observed)  # traffic
        assert any(score == v_new[i] for i, score in observed)  # straddled

    def test_watcher_ignores_claimed_but_incomplete_versions(
        self, published, tmp_path
    ):
        # a private registry: other tests publish v2 into the shared one
        _, _, model = published
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.publish(model)

        async def inner():
            server = await _started(model, record, window_s=0.0)
            watcher = RegistryWatcher(
                server, registry, record.spec, record.fingerprint, poll_s=10.0
            )
            try:
                # a concurrent publisher has claimed v9 but not completed
                # it: the watcher must not swap to a half-written artifact
                claimed = record.path.parent.parent / "v0009"
                claimed.mkdir()
                assert await watcher.check_once() is False
                assert server.swaps == 0
                claimed.rmdir()
            finally:
                await server.stop()

        run(inner())

    def test_swap_with_workers_requires_artifact(self, published):
        registry, record, model = published

        async def inner():
            server = await _started(model, record, window_s=0.0, workers=1)
            try:
                with pytest.raises(ValueError, match="artifact"):
                    server.swap_model(model)
            finally:
                await server.stop()

        run(inner())

    def test_watcher_validation(self, published):
        registry, record, model = published
        with pytest.raises(ValueError, match="poll_s"):
            RegistryWatcher(object(), registry, record.spec, record.fingerprint,
                            poll_s=0.0)


class TestGracefulShutdown:
    def test_stop_drains_inflight_requests(self, published, batch):
        # requests sitting in the micro-batch window when stop() lands
        # must still be scored and answered before connections close
        registry, record, model = published
        direct = model.score_batch(batch)

        async def inner():
            server = await _started(model, record, window_s=0.25, max_batch=64)

            async def one(i):
                client = await ScoreClient.connect("127.0.0.1", server.port)
                try:
                    status, payload = await client.request(
                        "POST", "/score", {"row": batch[i].tolist()}
                    )
                finally:
                    await client.close()
                return i, status, payload

            tasks = [asyncio.create_task(one(i)) for i in range(8)]
            await asyncio.sleep(0.05)  # let them enqueue inside the window
            assert server.batcher.pending > 0 or server._inflight > 0
            await server.stop()
            return await asyncio.gather(*tasks)

        results = run(inner())
        assert len(results) == 8
        for i, status, payload in results:
            assert status == 200
            assert payload["scores"] == [direct[i]]

    def test_no_new_connections_after_stop(self, published):
        registry, record, model = published

        async def inner():
            server = await _started(model, record, window_s=0.0)
            port = server.port
            await server.stop()
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection("127.0.0.1", port)

        run(inner())


class TestServeCli:
    """The serve subcommand's argument validation (the server loop itself
    is exercised above and by the bench's in-process harness)."""

    def test_spec_and_model_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve", "--spec", SPEC, "--registry", str(tmp_path),
                  "--model", "m.npz"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve"])

    def test_spec_requires_registry(self):
        with pytest.raises(SystemExit, match="needs --registry"):
            main(["serve", "--spec", SPEC])

    def test_model_rejects_registry_selectors(self, tmp_path):
        with pytest.raises(SystemExit, match="go with --spec"):
            main(["serve", "--model", "m.npz", "--model-version", "2"])
        with pytest.raises(SystemExit, match="go with --spec"):
            main(["serve", "--model", "m.npz", "--fingerprint", "ab" * 8])

    def test_unpublished_spec_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="no published models"):
            main(["serve", "--spec", SPEC, "--registry", str(tmp_path / "reg")])

    def test_missing_model_file_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="error"):
            main(["serve", "--model", str(tmp_path / "missing.npz")])
