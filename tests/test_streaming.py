"""Streaming McCatch: refit consistency, provisional scoring, windows."""

import numpy as np
import pytest

from repro import McCatch, StreamingMcCatch
from repro.metric.strings import levenshtein


@pytest.fixture()
def gaussian_stream():
    rng = np.random.default_rng(0)
    return [rng.normal(0, 1, (100, 2)) for _ in range(5)]


class TestConstruction:
    def test_invalid_refit_factor(self):
        with pytest.raises(ValueError, match="refit_factor"):
            StreamingMcCatch(refit_factor=1.0)

    def test_invalid_min_fit_size(self):
        with pytest.raises(ValueError, match="min_fit_size"):
            StreamingMcCatch(min_fit_size=1)

    def test_window_smaller_than_min_fit(self):
        with pytest.raises(ValueError, match="max_window"):
            StreamingMcCatch(min_fit_size=64, max_window=32)

    def test_object_stream_requires_metric(self):
        stream = StreamingMcCatch()
        with pytest.raises(ValueError, match="metric"):
            stream.update(["abc", "abd"])


class TestRefitConsistency:
    def test_refit_equals_batch(self, gaussian_stream):
        """After refit, the streaming result is the batch result."""
        stream = StreamingMcCatch(McCatch(index="vptree"))
        for batch in gaussian_stream:
            stream.update(batch)
        streamed = stream.refit()
        X = np.vstack(gaussian_stream)
        batch_result = McCatch(index="vptree").fit(X)
        assert np.array_equal(streamed.point_scores, batch_result.point_scores)
        assert len(streamed.microclusters) == len(batch_result.microclusters)
        for a, b in zip(streamed.microclusters, batch_result.microclusters):
            assert np.array_equal(np.sort(a.indices), np.sort(b.indices))
            assert a.score == pytest.approx(b.score)

    def test_geometric_refit_schedule(self, gaussian_stream):
        stream = StreamingMcCatch(refit_factor=2.0, min_fit_size=100)
        refits = [stream.update(batch).refitted for batch in gaussian_stream]
        # Fit at 100, then not until >= 200, then not until >= 400.
        assert refits == [True, True, False, True, False]


class TestProvisionalScoring:
    def test_obvious_outlier_flagged_between_refits(self, gaussian_stream):
        stream = StreamingMcCatch(refit_factor=10.0)  # no refits after first
        for batch in gaussian_stream:
            stream.update(batch)
        update = stream.update(np.array([[50.0, 50.0]]))
        assert not update.refitted
        assert update.provisional_outliers.size == 1
        assert update.provisional_scores[0] > 1.0

    def test_inlier_not_flagged_between_refits(self, gaussian_stream):
        stream = StreamingMcCatch(refit_factor=10.0)
        for batch in gaussian_stream:
            stream.update(batch)
        update = stream.update(np.array([[0.0, 0.1]]))
        assert not update.refitted
        assert update.provisional_outliers.size == 0

    def test_warmup_returns_zero_scores(self):
        stream = StreamingMcCatch(min_fit_size=100)
        update = stream.update(np.zeros((10, 2)))
        assert not update.refitted
        assert stream.result is None
        assert np.all(update.provisional_scores == 0)

    def test_provisional_monotone_in_distance(self, gaussian_stream):
        """Farther from the inliers -> provisional score no smaller."""
        stream = StreamingMcCatch(refit_factor=10.0)
        for batch in gaussian_stream:
            stream.update(batch)
        probes = np.array([[2.0, 0.0], [5.0, 0.0], [20.0, 0.0], [80.0, 0.0]])
        scores = [stream.update(p[None, :]).provisional_scores[0] for p in probes]
        assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:]))


class TestSlidingWindow:
    def test_eviction_caps_window(self):
        rng = np.random.default_rng(1)
        stream = StreamingMcCatch(max_window=150, min_fit_size=32)
        for _ in range(5):
            stream.update(rng.normal(size=(100, 2)))
        assert len(stream) == 150
        assert stream.n_seen == 500

    def test_refit_covers_only_window(self):
        rng = np.random.default_rng(2)
        stream = StreamingMcCatch(max_window=120, min_fit_size=32)
        for _ in range(4):
            stream.update(rng.normal(size=(100, 2)))
        result = stream.refit()
        assert result.n == 120

    def test_old_regime_forgotten(self):
        """After the window slides past a regime change, the old regime's
        location is anomalous again."""
        rng = np.random.default_rng(3)
        stream = StreamingMcCatch(max_window=200, min_fit_size=64, refit_factor=1.01)
        for _ in range(3):
            stream.update(rng.normal(0, 1, (100, 2)))     # regime A
        for _ in range(3):
            stream.update(rng.normal(50, 1, (100, 2)))    # regime B fills window
        stream.refit()
        update = stream.update(np.array([[0.0, 0.0]]))    # back to regime A
        flagged_positions = set(int(i) for i in update.provisional_outliers) if not update.refitted else set()
        if update.refitted:
            flagged_positions = set(int(i) for i in stream.result.outlier_indices)
        assert len(stream) <= 201
        assert (len(stream) - 1) in flagged_positions or update.provisional_scores[0] > 1.0


class TestObjectStream:
    def test_string_stream(self):
        rng = np.random.default_rng(4)
        vocab = list("abcdef")
        words = ["".join(rng.choice(vocab, size=rng.integers(3, 8))) for _ in range(150)]
        stream = StreamingMcCatch(
            McCatch(index="vptree"), metric=levenshtein, min_fit_size=64
        )
        stream.update(words[:100])
        stream.update(words[100:])
        update = stream.update(["zzzzzzzzzzzzzzzzzzzz"])
        assert update.provisional_scores[0] > 1.0

    def test_type_switch_rejected(self):
        stream = StreamingMcCatch(metric=levenshtein)
        stream.update(["abc", "abd"] * 20)
        with pytest.raises(TypeError, match="object data"):
            stream.update(np.zeros((3, 2)))

    def test_vector_then_object_rejected(self):
        stream = StreamingMcCatch()
        stream.update(np.zeros((40, 2)) + np.arange(40)[:, None])
        with pytest.raises(TypeError, match="vector data"):
            stream.update(["abc"])


class TestEmptyAndEdge:
    def test_empty_batch_noop(self):
        stream = StreamingMcCatch()
        update = stream.update(np.zeros((0, 2)))
        assert update.n_new == 0
        assert stream.n_seen == 0

    def test_refit_too_early_raises(self):
        stream = StreamingMcCatch()
        with pytest.raises(RuntimeError, match="at least 2"):
            stream.refit()

    def test_doctest_example(self):
        rng = np.random.default_rng(0)
        stream = StreamingMcCatch()
        for _ in range(4):
            stream.update(rng.normal(0, 1, (100, 2)))
        update = stream.update(np.array([[9.0, 9.0], [9.1, 9.0]]))
        assert update.provisional_outliers.size
