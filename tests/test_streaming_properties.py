"""Property-based streaming tests: any batch split must refit to the
same result as one batch run, regardless of how the stream was chopped."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import McCatch, StreamingMcCatch


def _dataset(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, 2))
    X[-2:] = [[7.5, 7.5], [7.6, 7.5]]
    return X


class TestSplitInvariance:
    @given(
        seed=st.integers(0, 50),
        n=st.integers(80, 200),
        n_cuts=st.integers(0, 5),
        cut_seed=st.integers(0, 1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_split_refits_to_batch_result(self, seed, n, n_cuts, cut_seed):
        X = _dataset(seed, n)
        rng = np.random.default_rng(cut_seed)
        cuts = sorted(set(int(c) for c in rng.integers(1, n, size=n_cuts)))
        boundaries = [0] + cuts + [n]

        stream = StreamingMcCatch(McCatch(), min_fit_size=2)
        for lo, hi in zip(boundaries, boundaries[1:]):
            if hi > lo:
                stream.update(X[lo:hi])
        streamed = stream.refit()
        batch = McCatch().fit(X)
        assert np.array_equal(streamed.point_scores, batch.point_scores)
        assert [tuple(sorted(map(int, m.indices))) for m in streamed.microclusters] == [
            tuple(sorted(map(int, m.indices))) for m in batch.microclusters
        ]

    @given(seed=st.integers(0, 50), batch_size=st.integers(10, 120))
    @settings(max_examples=10, deadline=None)
    def test_uniform_batches(self, seed, batch_size):
        X = _dataset(seed, 150)
        stream = StreamingMcCatch(McCatch(), min_fit_size=2)
        for start in range(0, 150, batch_size):
            stream.update(X[start : start + batch_size])
        streamed = stream.refit()
        batch = McCatch().fit(X)
        assert np.array_equal(streamed.point_scores, batch.point_scores)


class TestProvisionalScoreProperties:
    @given(
        probe=st.tuples(st.floats(-30, 30), st.floats(-30, 30)),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=25, deadline=None)
    def test_provisional_score_is_finite_and_positive(self, probe, seed):
        X = _dataset(seed, 150)
        stream = StreamingMcCatch(McCatch(), refit_factor=50.0, min_fit_size=150)
        stream.update(X)
        update = stream.update(np.array([list(probe)]))
        assert update.provisional_scores.shape == (1,)
        assert np.isfinite(update.provisional_scores[0])
        assert update.provisional_scores[0] >= 0.0

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_duplicate_of_inlier_never_flagged(self, seed):
        X = _dataset(seed, 150)
        stream = StreamingMcCatch(McCatch(), refit_factor=50.0, min_fit_size=150)
        stream.update(X)
        result = stream.result
        inlier_mask = np.ones(result.n, dtype=bool)
        if result.outlier_indices.size:
            inlier_mask[result.outlier_indices] = False
        some_inlier = int(np.nonzero(inlier_mask)[0][0])
        update = stream.update(X[some_inlier][None, :])
        # Distance to the nearest inlier is 0 < d, so never provisional.
        assert update.provisional_outliers.size == 0
