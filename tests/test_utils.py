"""Tests for repro.utils: validation helpers and RNG plumbing."""

import numpy as np
import pytest

from repro.utils import (
    as_float_array,
    check_dataset,
    check_positive_int,
    check_probability,
    check_random_state,
)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = check_random_state(7).integers(1000, size=5)
        b = check_random_state(7).integers(1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_bad_type(self):
        with pytest.raises(TypeError):
            check_random_state("seed")


class TestAsFloatArray:
    def test_1d_promoted_to_column(self):
        arr = as_float_array([1, 2, 3])
        assert arr.shape == (3, 1)
        assert arr.dtype == np.float64

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            as_float_array([[1.0, np.nan]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one row"):
            as_float_array(np.empty((0, 2)))

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            as_float_array(np.zeros((2, 2, 2)))


class TestCheckDataset:
    def test_array(self):
        assert check_dataset(np.zeros((5, 2))) == 5

    def test_sequence(self):
        assert check_dataset(["a", "b", "c"]) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_dataset([])

    def test_rejects_unsized(self):
        with pytest.raises(TypeError):
            check_dataset(iter([1, 2]))


class TestScalarChecks:
    def test_positive_int(self):
        assert check_positive_int(3, name="a") == 3

    def test_positive_int_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_positive_int(True, name="a")
        with pytest.raises(TypeError):
            check_positive_int(3.0, name="a")

    def test_positive_int_minimum(self):
        with pytest.raises(ValueError):
            check_positive_int(1, name="a", minimum=2)

    def test_probability_bounds(self):
        assert check_probability(0.5, name="p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, name="p")
        with pytest.raises(ValueError):
            check_probability(0.0, name="p", allow_zero=False)
