"""SVG figures and HTML reports: structure, content, and edge cases."""

import numpy as np
import pytest

from repro import McCatch
from repro.viz import (
    histogram_svg,
    html_report,
    oracle_plot_svg,
    scaling_plot_svg,
    scatter_svg,
    write_report,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 1, (300, 2)), [[8.0, 8.0], [8.1, 8.0]], [[-9.0, 5.0]]])
    return X, McCatch().fit(X)


class TestScatter:
    def test_valid_svg_with_all_points(self, fitted):
        X, result = fitted
        svg = scatter_svg(X, result, title="demo")
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<circle") == X.shape[0]
        assert "demo" in svg

    def test_outliers_get_palette_colors(self, fitted):
        X, result = fitted
        svg = scatter_svg(X, result)
        assert "#d62728" in svg  # rank-0 red
        assert "#bbbbbb" in svg  # inlier grey

    def test_without_result_all_grey(self, fitted):
        X, _ = fitted
        svg = scatter_svg(X)
        assert "#d62728" not in svg

    def test_high_dim_projected(self, fitted):
        _, result = fitted
        rng = np.random.default_rng(1)
        X5 = rng.normal(size=(result.n, 5))
        assert scatter_svg(X5, result).count("<circle") == result.n

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d vector"):
            scatter_svg(np.zeros((10, 1)))


class TestOraclePlot:
    def test_contains_cutoff_lines(self, fitted):
        _, result = fitted
        svg = oracle_plot_svg(result)
        assert svg.count("stroke-dasharray") >= 2  # vertical + horizontal d
        assert "1NN Distance" in svg and "Group 1NN Distance" in svg

    def test_every_point_drawn(self, fitted):
        X, result = fitted
        assert oracle_plot_svg(result).count("<circle") == X.shape[0]

    def test_infinite_cutoff_skips_guides(self, fitted):
        from dataclasses import replace

        _, result = fitted
        no_cut = replace(result.cutoff, value=float("inf"), index=-1)
        patched = type(result)(
            microclusters=result.microclusters,
            point_scores=result.point_scores,
            oracle=result.oracle,
            cutoff=no_cut,
            n=result.n,
        )
        svg = oracle_plot_svg(patched)
        assert svg.startswith("<svg")


class TestHistogram:
    def test_bars_match_bins(self, fitted):
        _, result = fitted
        svg = histogram_svg(result)
        # Background + one bar per bin.
        assert svg.count("<rect") == len(result.cutoff.histogram) + 2

    def test_cut_marker_present(self, fitted):
        _, result = fitted
        assert "cut" in histogram_svg(result)


class TestScalingPlot:
    def test_basic(self):
        svg = scaling_plot_svg([100, 1000, 10000], [0.01, 0.1, 1.2], expected_slope=1.0)
        assert "slope 1.00" in svg
        assert svg.count("<circle") == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="at least two"):
            scaling_plot_svg([100], [0.1])
        with pytest.raises(ValueError, match="positive"):
            scaling_plot_svg([100, 200], [0.0, 0.1])


class TestHtmlReport:
    def test_selfcontained_document(self, fitted):
        X, result = fitted
        doc = html_report(result, X, title="Network scan")
        assert doc.startswith("<!DOCTYPE html>")
        assert "Network scan" in doc
        assert doc.count("<svg") == 3  # oracle + histogram + scatter
        assert "bits/member" in doc

    def test_object_data_skips_scatter(self, fitted):
        _, result = fitted
        doc = html_report(result, None)
        assert doc.count("<svg") == 2

    def test_explanations_included(self, fitted):
        X, result = fitted
        doc = html_report(result, X, explain_top=2)
        assert doc.count("class='explain'") == 2

    def test_escapes_title(self, fitted):
        _, result = fitted
        doc = html_report(result, title="<script>alert(1)</script>")
        assert "<script>alert" not in doc

    def test_write_report(self, fitted, tmp_path):
        X, result = fitted
        out = write_report(result, tmp_path / "report.html", X)
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "</html>" in text
